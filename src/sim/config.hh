/**
 * @file
 * Machine configuration for the modeled CC-NUMA multiprocessor.
 *
 * Defaults follow the experimental setup of Zhang, Rauchwerger &
 * Torrellas (HPCA 1998), section 5.1: 200-MHz processors, 32-KB
 * direct-mapped on-chip L1, 512-KB direct-mapped L2, 64-byte lines, a
 * DASH-like invalidation protocol, and unloaded round-trip latencies
 * of 1 / 12 / 60 / 208 / 291 cycles to L1 / L2 / local memory /
 * 2-hop remote memory / 3-hop remote memory. The component latencies
 * below compose to those round trips; bench_latency_table verifies
 * this on the built simulator.
 */

#ifndef SPECRT_SIM_CONFIG_HH
#define SPECRT_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace specrt
{

/** Geometry of one cache level. All caches are direct-mapped. */
struct CacheConfig
{
    /** Total capacity in bytes. */
    uint64_t sizeBytes;
    /** Line size in bytes. */
    uint32_t lineBytes;

    uint64_t numLines() const { return sizeBytes / lineBytes; }
};

/**
 * Component latencies, in processor cycles. All are one-way service
 * times; round trips are sums over the transaction path.
 */
struct LatencyConfig
{
    /** L1 hit (load-to-use). */
    Cycles l1Hit = 1;
    /** L1 miss detection + L2 array access + refill into L1. */
    Cycles l2Access = 11;
    /**
     * Home-node directory + memory access, overlapped ("in the home
     * node, directory and memory are accessed at the same time").
     */
    Cycles dirMemAccess = 48;
    /** Directory lookup only (when the home must forward). */
    Cycles dirLookup = 20;
    /** Owner-cache intervention: fetch dirty line out of a cache. */
    Cycles ownerAccess = 37;
    /** One network traversal between any two distinct nodes. */
    Cycles netHop = 74;
    /** Invalidation processing at a sharer cache. */
    Cycles invalCycles = 4;
    /**
     * Minimum occupancy of a directory controller per transaction;
     * models contention at the home (the network itself is modeled
     * contention-free, as in the paper).
     */
    Cycles dirOccupancy = 6;
    /** Minimum occupancy of the L2/memory port per request. */
    Cycles memOccupancy = 4;
};

/**
 * Fault-injection and transaction-watchdog knobs.
 *
 * All injection is driven by a seeded FaultPlan (sim/fault.hh) wired
 * into Network::send(), so a given (seed, workload, config) triple
 * replays the exact same fault schedule. Message drops are only
 * allowed for transactions that can be retried: requests covered by
 * the cache-controller watchdog and fire-and-forget speculation
 * signals retransmitted by the network interface.
 */
struct FaultConfig
{
    /** Seed of the fault schedule. */
    uint64_t seed = 0;

    /** Probability a drop-eligible message is lost in the network. */
    double dropProb = 0;
    /** Probability a dup-eligible message is delivered twice. */
    double dupProb = 0;
    /** Probability a message gets extra delivery latency. */
    double jitterProb = 0;
    /** Maximum extra latency of a jittered message, in cycles. */
    Cycles jitterMaxCycles = 200;

    /**
     * Transaction watchdog timeout in cycles (0 = watchdog off).
     * A requester whose miss/upgrade transaction exceeds this retries
     * the request; the timeout doubles per retry (exponential
     * backoff). Dropped fire-and-forget signals are retransmitted by
     * the network on the same schedule.
     */
    Cycles watchdogTimeout = 0;
    /** Retries before a transaction is declared lost. */
    int watchdogMaxRetries = 4;

    /** Any injection enabled at all. */
    bool
    anyFaults() const
    {
        return dropProb > 0 || dupProb > 0 || jitterProb > 0;
    }

    /**
     * Whether the protocol engines must tolerate duplicate and stray
     * messages instead of asserting: injection or the watchdog (which
     * can retry spuriously on a slow reply) can produce them.
     */
    bool
    lenientProtocol() const
    {
        return anyFaults() || watchdogTimeout > 0;
    }
};

/**
 * Protocol-trace knobs (sim/trace.hh). Host-side observability
 * only: tracing never changes modeled timing, so this struct is
 * deliberately excluded from MachineConfig::fingerprint().
 */
struct TraceConfig
{
    /** Record protocol events into the trace ring. */
    bool enabled = false;
    /** Where to write the Chrome/Perfetto JSON ("" = don't). */
    std::string outPath;
    /** Ring capacity in records (0 = TraceBuffer::defaultCapacity). */
    size_t capacityRecords = 0;

    /**
     * Parse SPECRT_TRACE (unset/"0" = off; "1" = on; any other
     * value = on, writing to that path), SPECRT_TRACE_OUT and
     * SPECRT_TRACE_CAPACITY.
     */
    static TraceConfig fromEnv();
};

/**
 * Time-series metrics knobs (sim/timeline.hh). Host-side
 * observability only, like tracing: sampling never changes modeled
 * timing, so this struct is excluded from
 * MachineConfig::fingerprint().
 */
struct TimelineConfig
{
    /** Sample registered stats and gauges periodically. */
    bool enabled = false;
    /** Where to write the timeline CSV ("" = don't). */
    std::string outPath;
    /** Sampling period (0 = Timeline::defaultIntervalTicks). */
    Tick intervalTicks = 0;

    /**
     * Parse SPECRT_TIMELINE (unset/"0" = off; "1" = on; any other
     * value = on, writing the CSV to that path),
     * SPECRT_TIMELINE_OUT and SPECRT_TIMELINE_INTERVAL.
     */
    static TimelineConfig fromEnv();
};

/**
 * Critical-path / stall-attribution profiler knobs (sim/stall.hh,
 * sim/critpath.hh). Host-side observability only, like tracing:
 * attribution never changes modeled timing, so this struct is
 * excluded from MachineConfig::fingerprint().
 */
struct CritpathConfig
{
    /** Attribute stalls and record transaction latencies. */
    bool enabled = false;
    /** Where to write the Perfetto critpath JSON ("" = don't). */
    std::string outPath;

    /**
     * Parse SPECRT_CRITPATH (unset/"0" = off; "1" = on; any other
     * value = on, writing the report to that path) and
     * SPECRT_CRITPATH_OUT.
     */
    static CritpathConfig fromEnv();
};

/** Full machine description. */
struct MachineConfig
{
    /** Number of nodes == number of processors. */
    int numProcs = 16;
    /** Page size used for round-robin data placement. */
    uint32_t pageBytes = 4096;

    CacheConfig l1 = {32 * 1024, 64};
    CacheConfig l2 = {512 * 1024, 64};
    LatencyConfig lat;

    /** Write-buffer entries per processor (no stall on write miss). */
    int writeBufferEntries = 16;

    /**
     * Cycles a processor holds the dynamic-scheduling lock when
     * grabbing a chunk of iterations (covers the remote atomic on
     * the shared counter). Grabs serialize, so this is also the
     * minimum spacing between grants under contention.
     */
    Cycles schedLockCycles = 100;

    /**
     * Cost of one barrier episode (arrival of the last processor to
     * release), charged at every phase boundary.
     */
    Cycles barrierCycles = 150;

    /** Fault injection + watchdog (off by default). */
    FaultConfig fault;

    /**
     * Protocol tracing (off by default). Observability-only: not
     * part of fingerprint(), because it cannot change modeled
     * timing.
     */
    TraceConfig trace;

    /**
     * Periodic metric sampling (off by default). Observability-only
     * like tracing: not part of fingerprint().
     */
    TimelineConfig timeline;

    /**
     * Stall attribution + critical-path recording (off by default).
     * Observability-only like tracing: not part of fingerprint().
     */
    CritpathConfig critpath;

    /** Checks that the configuration is self-consistent (fatal()s). */
    void validate() const;

    /** Human-readable one-line summary. */
    std::string summary() const;

    /**
     * Stable FNV-1a hash over every modeled-machine parameter.
     * Benchmark telemetry records it so perf points taken under
     * different machine models are never compared against each
     * other.
     */
    uint64_t fingerprint() const;
};

} // namespace specrt

#endif // SPECRT_SIM_CONFIG_HH
