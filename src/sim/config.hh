/**
 * @file
 * Machine configuration for the modeled CC-NUMA multiprocessor.
 *
 * Defaults follow the experimental setup of Zhang, Rauchwerger &
 * Torrellas (HPCA 1998), section 5.1: 200-MHz processors, 32-KB
 * direct-mapped on-chip L1, 512-KB direct-mapped L2, 64-byte lines, a
 * DASH-like invalidation protocol, and unloaded round-trip latencies
 * of 1 / 12 / 60 / 208 / 291 cycles to L1 / L2 / local memory /
 * 2-hop remote memory / 3-hop remote memory. The component latencies
 * below compose to those round trips; bench_latency_table verifies
 * this on the built simulator.
 */

#ifndef SPECRT_SIM_CONFIG_HH
#define SPECRT_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace specrt
{

/** Geometry of one cache level. All caches are direct-mapped. */
struct CacheConfig
{
    /** Total capacity in bytes. */
    uint64_t sizeBytes;
    /** Line size in bytes. */
    uint32_t lineBytes;

    uint64_t numLines() const { return sizeBytes / lineBytes; }
};

/**
 * Component latencies, in processor cycles. All are one-way service
 * times; round trips are sums over the transaction path.
 */
struct LatencyConfig
{
    /** L1 hit (load-to-use). */
    Cycles l1Hit = 1;
    /** L1 miss detection + L2 array access + refill into L1. */
    Cycles l2Access = 11;
    /**
     * Home-node directory + memory access, overlapped ("in the home
     * node, directory and memory are accessed at the same time").
     */
    Cycles dirMemAccess = 48;
    /** Directory lookup only (when the home must forward). */
    Cycles dirLookup = 20;
    /** Owner-cache intervention: fetch dirty line out of a cache. */
    Cycles ownerAccess = 37;
    /** One network traversal between any two distinct nodes. */
    Cycles netHop = 74;
    /** Invalidation processing at a sharer cache. */
    Cycles invalCycles = 4;
    /**
     * Minimum occupancy of a directory controller per transaction;
     * models contention at the home (the network itself is modeled
     * contention-free, as in the paper).
     */
    Cycles dirOccupancy = 6;
    /** Minimum occupancy of the L2/memory port per request. */
    Cycles memOccupancy = 4;
};

/** Full machine description. */
struct MachineConfig
{
    /** Number of nodes == number of processors. */
    int numProcs = 16;
    /** Page size used for round-robin data placement. */
    uint32_t pageBytes = 4096;

    CacheConfig l1 = {32 * 1024, 64};
    CacheConfig l2 = {512 * 1024, 64};
    LatencyConfig lat;

    /** Write-buffer entries per processor (no stall on write miss). */
    int writeBufferEntries = 16;

    /**
     * Cycles a processor holds the dynamic-scheduling lock when
     * grabbing a chunk of iterations (covers the remote atomic on
     * the shared counter). Grabs serialize, so this is also the
     * minimum spacing between grants under contention.
     */
    Cycles schedLockCycles = 100;

    /**
     * Cost of one barrier episode (arrival of the last processor to
     * release), charged at every phase boundary.
     */
    Cycles barrierCycles = 150;

    /** Checks that the configuration is self-consistent (fatal()s). */
    void validate() const;

    /** Human-readable one-line summary. */
    std::string summary() const;
};

} // namespace specrt

#endif // SPECRT_SIM_CONFIG_HH
