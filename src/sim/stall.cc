#include "sim/stall.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/critpath.hh"
#include "sim/sim_context.hh"

namespace specrt
{
namespace stall
{

thread_local bool tlsStallOn = false;

const char *
causeName(Cause c)
{
    switch (c) {
      case Cause::LoadMiss:     return "load_miss";
      case Cause::DirQueue:     return "dir_queue";
      case Cause::NetTransit:   return "net_transit";
      case Cause::RetryBackoff: return "retry_backoff";
      case Cause::Barrier:      return "barrier";
      case Cause::SchedWait:    return "sched_wait";
      case Cause::CommitSerial: return "commit_serial";
      case Cause::AbortRedo:    return "abort_redo";
      case Cause::Other:        return "other";
      default:                  return "?";
    }
}

const char *
causePrettyName(Cause c)
{
    switch (c) {
      case Cause::LoadMiss:     return "load-miss";
      case Cause::DirQueue:     return "dir-queue";
      case Cause::NetTransit:   return "net-transit";
      case Cause::RetryBackoff: return "retry-backoff";
      case Cause::Barrier:      return "barrier";
      case Cause::SchedWait:    return "sched-wait";
      case Cause::CommitSerial: return "commit-serial";
      case Cause::AbortRedo:    return "abort-redo";
      case Cause::Other:        return "other";
      default:                  return "?";
    }
}

double
CostBreakdown::stallTotal() const
{
    double sum = 0;
    for (double v : stalls)
        sum += v;
    return sum;
}

Cause
CostBreakdown::dominantCause() const
{
    size_t dom = 0;
    for (size_t c = 1; c < numCauses; ++c)
        if (stalls[c] > stalls[dom])
            dom = c;
    return static_cast<Cause>(dom);
}

double
CostBreakdown::dominantShare() const
{
    double sum = stallTotal();
    if (sum <= 0)
        return 0;
    return stalls[static_cast<size_t>(dominantCause())] / sum;
}

std::string
CostBreakdown::summary() const
{
    if (!valid || stallTotal() <= 0)
        return "";
    char buf[128];
    std::snprintf(buf, sizeof(buf), "run bounded %ld%% by %s",
                  std::lround(100.0 * dominantShare()),
                  causePrettyName(dominantCause()));
    return buf;
}

void
refreshEnabled()
{
    tlsStallOn = SimContext::current().stallEngine != nullptr;
}

void
install(Engine *e)
{
    SimContext::current().stallEngine = e;
    refreshEnabled();
}

Engine *
current()
{
    return SimContext::current().stallEngine;
}

// --- Engine -----------------------------------------------------------

namespace
{

/** Per-cause stall descriptions (stat registry). */
const char *
causeDesc(Cause c)
{
    switch (c) {
      case Cause::LoadMiss:
        return "cycles stalled on the memory service of load misses";
      case Cause::DirQueue:
        return "cycles stalled in home-directory queues/occupancy";
      case Cause::NetTransit:
        return "cycles stalled on network transit";
      case Cause::RetryBackoff:
        return "cycles stalled in watchdog retry windows";
      case Cause::Barrier:
        return "cycles stalled on barrier imbalance + episodes";
      case Cause::SchedWait:
        return "cycles stalled on the scheduling lock";
      case Cause::CommitSerial:
        return "cycles stalled on commit/merge serialization";
      case Cause::AbortRedo:
        return "cycles lost to failed-speculation restore + redo";
      case Cause::Other:
        return "stall cycles attributed to no specific component";
      default:
        return "?";
    }
}

} // namespace

Engine::Engine(int num_procs)
    : StatGroup("stall"),
      nProcs(num_procs),
      busy(this, "busy", "busy cycles (settled per phase)",
           static_cast<size_t>(num_procs)),
      overrun(this, "overrun",
              "cycles of busy work exceeding settled phase lengths"),
      pending(static_cast<size_t>(num_procs)),
      phaseMark(static_cast<size_t>(num_procs))
{
    for (size_t c = 0; c < numCauses; ++c) {
        Cause cc = static_cast<Cause>(c);
        causes[c] = std::make_unique<VectorStat>(
            this, causeName(cc), causeDesc(cc),
            static_cast<size_t>(num_procs));
    }
    for (auto &m : phaseMark)
        m.fill(0.0);
}

void
Engine::loadBegin(NodeId n, uint64_t seq, Addr line, Addr elem,
                  IterNum iter, NodeId home, Tick now)
{
    PendingLoad &p = pending[static_cast<size_t>(n)];
    // A new miss before the previous scratch closed (the processor
    // was hard-stopped mid-load): the old record's credits stay
    // charged -- the waits were real -- and settlePhase() reconciles.
    p.open = true;
    p.seq = seq;
    p.line = line;
    p.elem = elem;
    p.iter = iter;
    p.home = home;
    p.start = now;
    p.dir = p.net = p.retry = 0;
}

void
Engine::dirWait(NodeId n, uint64_t seq, double wait)
{
    if (n < 0 || n >= nProcs || wait <= 0)
        return;
    PendingLoad &p = pending[static_cast<size_t>(n)];
    if (!p.open || p.seq != seq)
        return; // store txn or stray message: never charge blind
    charge(n, Cause::DirQueue, wait);
    p.dir += wait;
}

void
Engine::netLeg(NodeId n, uint64_t seq, double hop)
{
    if (n < 0 || n >= nProcs || hop <= 0)
        return;
    PendingLoad &p = pending[static_cast<size_t>(n)];
    if (!p.open || p.seq != seq)
        return;
    charge(n, Cause::NetTransit, hop);
    p.net += hop;
}

void
Engine::retryWindow(NodeId n, uint64_t seq, double w)
{
    if (n < 0 || n >= nProcs || w <= 0)
        return;
    PendingLoad &p = pending[static_cast<size_t>(n)];
    if (!p.open || p.seq != seq)
        return;
    charge(n, Cause::RetryBackoff, w);
    p.retry += w;
}

void
Engine::loadWait(NodeId n, double wait, Tick now)
{
    if (n < 0 || n >= nProcs || wait < 0)
        return;
    PendingLoad &p = pending[static_cast<size_t>(n)];
    if (!p.open) {
        // Local L2 service: no transaction left the node.
        charge(n, Cause::LoadMiss, wait);
        return;
    }
    // Component credits may exceed the wait the processor measured
    // (a retry window can overlap the reply). Give back the excess
    // in fixed order so attribution never exceeds measurement.
    double charged = p.dir + p.net + p.retry;
    if (charged > wait) {
        double excess = charged - wait;
        double t = std::min(p.retry, excess);
        charge(n, Cause::RetryBackoff, -t);
        p.retry -= t;
        excess -= t;
        t = std::min(p.net, excess);
        charge(n, Cause::NetTransit, -t);
        p.net -= t;
        excess -= t;
        t = std::min(p.dir, excess);
        charge(n, Cause::DirQueue, -t);
        p.dir -= t;
    }
    double service = wait - (p.dir + p.net + p.retry);
    charge(n, Cause::LoadMiss, service);
    if (recorder && recorder->isOn()) {
        critpath::TxnRecord r;
        r.node = n;
        r.home = p.home;
        r.line = p.line;
        r.elem = p.elem;
        r.iter = p.iter;
        r.seq = p.seq;
        r.start = p.start;
        r.end = now;
        r.dirWait = p.dir;
        r.net = p.net;
        r.retry = p.retry;
        r.service = service;
        recorder->addTxn(r);
    }
    p.open = false;
}

void
Engine::charge(NodeId n, Cause c, double t)
{
    if (n < 0 || n >= nProcs || t == 0)
        return;
    (*causes[static_cast<size_t>(c)])[static_cast<size_t>(n)] += t;
}

double
Engine::attributed(NodeId n) const
{
    double sum = 0;
    for (size_t c = 0; c < numCauses; ++c)
        sum += (*causes[c])[static_cast<size_t>(n)];
    return sum;
}

void
Engine::beginPhase()
{
    for (int n = 0; n < nProcs; ++n)
        for (size_t c = 0; c < numCauses; ++c)
            phaseMark[static_cast<size_t>(n)][c] =
                (*causes[c])[static_cast<size_t>(n)];
}

void
Engine::settlePhase(double phase_ticks,
                    const std::vector<double> &busy_delta,
                    Cause residual_cause)
{
    // Over-attribution give-back order: vaguest cause first, the
    // phase-level residual causes before the per-transaction ones.
    static constexpr Cause giveBack[] = {
        Cause::Other,        Cause::LoadMiss,   Cause::Barrier,
        Cause::SchedWait,    Cause::CommitSerial,
        Cause::RetryBackoff, Cause::NetTransit, Cause::DirQueue,
        Cause::AbortRedo,
    };

    for (int n = 0; n < nProcs; ++n) {
        size_t ni = static_cast<size_t>(n);
        double busy_d =
            ni < busy_delta.size() ? busy_delta[ni] : 0.0;
        double attr_d = 0;
        for (size_t c = 0; c < numCauses; ++c)
            attr_d += (*causes[c])[ni] - phaseMark[ni][c];
        double residual = phase_ticks - busy_d - attr_d;
        if (residual >= 0) {
            charge(n, residual_cause, residual);
        } else {
            double deficit = -residual;
            for (Cause c : giveBack) {
                size_t ci = static_cast<size_t>(c);
                double avail = (*causes[ci])[ni] - phaseMark[ni][ci];
                double take = std::min(avail, deficit);
                if (take > 0) {
                    (*causes[ci])[ni] -= take;
                    deficit -= take;
                }
                if (deficit <= 0)
                    break;
            }
            if (deficit > 0) {
                // Busy work alone exceeded the phase length (can
                // only happen under fault-injected abort races).
                // Trim busy so the invariant stays exact and leave
                // an audit trail.
                busy_d -= deficit;
                overrun += deficit;
            }
        }
        busy[ni] += busy_d;
    }
    settled += phase_ticks;
    beginPhase(); // re-mark: consecutive settles stay consistent
}

} // namespace stall
} // namespace specrt
