#include "sim/trace_export.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "sim/critpath.hh"
#include "sim/timeline.hh"
#include "sim/trace.hh"

namespace specrt
{
namespace trace
{

namespace
{

/**
 * Synthetic pid for records with no node (loop begin/end,
 * checkpoints, executor-level aborts). Keeps machine-scope events on
 * their own track instead of polluting node 0.
 */
constexpr int machinePid = 9999;

/** Synthetic pid for the timeline's counter tracks. */
constexpr int counterPid = 9998;

/** Lanes (tids) within each node's track. */
constexpr int tidIter = 0;
constexpr int tidMsg = 1;
constexpr int tidProto = 2;

int
pidOf(const TraceRecord &r)
{
    return r.node == invalidNode ? machinePid
                                 : static_cast<int>(r.node);
}

std::string
esc(const char *s)
{
    std::string out;
    if (!s)
        return out;
    for (; *s; ++s) {
        char c = *s;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

/** One trace event object; `extra` is raw JSON appended verbatim. */
void
event(std::ostringstream &os, bool &first, const std::string &name,
      const char *ph, uint64_t ts, int pid, int tid,
      const std::string &extra = "")
{
    os << (first ? "\n" : ",\n") << "  {\"name\": \"" << name
       << "\", \"ph\": \"" << ph << "\", \"ts\": " << ts
       << ", \"pid\": " << pid << ", \"tid\": " << tid;
    if (!extra.empty())
        os << ", " << extra;
    os << "}";
    first = false;
}

std::string
argsCommon(const TraceRecord &r)
{
    std::ostringstream os;
    os << "\"args\": {\"loop\": " << r.loop << ", \"iter\": " << r.iter;
    if (r.addr != invalidAddr)
        os << ", \"elem\": \"0x" << std::hex << r.addr << std::dec
           << "\"";
    return os.str();
}

} // namespace

namespace
{

/**
 * The timeline's sampled series as Perfetto counter tracks: one "C"
 * event per (series, sample row), all on a synthetic "metrics"
 * process. Same tick timebase as the trace events, so counters and
 * protocol activity line up in the viewer.
 */
void
counterTracks(std::ostringstream &os, bool &first,
              const timeline::Timeline &tl)
{
    if (tl.numSamples() == 0)
        return;
    event(os, first, "process_name", "M", 0, counterPid, 0,
          "\"args\": {\"name\": \"metrics\"}");
    const std::vector<Tick> &ticks = tl.sampleTicks();
    const std::vector<uint32_t> &runs = tl.sampleRuns();
    for (const timeline::Timeline::Series &s : tl.allSeries()) {
        for (size_t row = 0; row < ticks.size(); ++row) {
            std::ostringstream extra;
            extra << "\"args\": {\"value\": " << s.values[row]
                  << ", \"run\": " << runs[row] << "}";
            event(os, first, esc(s.name.c_str()), "C", ticks[row],
                  counterPid, 0, extra.str());
        }
    }
}

} // namespace

std::string
chromeTraceJson(const TraceBuffer &buf, const timeline::Timeline *tl)
{
    std::ostringstream os;
    os << "{\"traceEvents\": [";
    bool first = true;

    // Metadata: name the per-node processes and their lanes, plus
    // the machine-scope track.
    std::set<int> pids;
    for (size_t i = 0; i < buf.size(); ++i)
        pids.insert(pidOf(buf.at(i)));
    for (int pid : pids) {
        std::ostringstream name;
        if (pid == machinePid)
            name << "machine";
        else
            name << "node " << pid;
        event(os, first, "process_name", "M", 0, pid, 0,
              "\"args\": {\"name\": \"" + name.str() + "\"}");
        event(os, first, "thread_name", "M", 0, pid, tidIter,
              "\"args\": {\"name\": \"iterations\"}");
        if (pid != machinePid) {
            event(os, first, "thread_name", "M", 0, pid, tidMsg,
                  "\"args\": {\"name\": \"messages\"}");
            event(os, first, "thread_name", "M", 0, pid, tidProto,
                  "\"args\": {\"name\": \"protocol\"}");
        }
    }

    for (size_t i = 0; i < buf.size(); ++i) {
        const TraceRecord &r = buf.at(i);
        int pid = pidOf(r);
        const char *cat = eventKindName(opCategory(r.op));
        std::ostringstream nm;

        switch (r.op) {
          case TraceOp::IterBegin:
          case TraceOp::IterEnd:
            nm << "iter " << r.iter;
            event(os, first, nm.str(),
                  r.op == TraceOp::IterBegin ? "B" : "E", r.tick, pid,
                  tidIter, argsCommon(r) + "}");
            break;

          case TraceOp::LoopBegin:
          case TraceOp::LoopEnd:
            nm << "loop " << r.loop << " ("
               << esc(r.label ? r.label : "?") << ")";
            event(os, first, nm.str(),
                  r.op == TraceOp::LoopBegin ? "B" : "E", r.tick, pid,
                  tidIter, argsCommon(r) + "}");
            break;

          case TraceOp::MsgSend:
          case TraceOp::MsgRecv: {
            nm << esc(r.label ? r.label : "msg");
            // A dur-1 slice on the endpoint's message lane...
            std::ostringstream extra;
            extra << "\"dur\": 1, \"cat\": \"" << cat << "\", "
                  << argsCommon(r) << ", \"peer\": " << r.peer
                  << ", \"flow\": " << r.b << "}";
            event(os, first, nm.str(), "X", r.tick, pid, tidMsg,
                  extra.str());
            // ...plus a flow arrow endpoint keyed by the flow id.
            std::ostringstream fl;
            fl << "\"cat\": \"" << cat << "\", \"id\": " << r.b;
            if (r.op == TraceOp::MsgRecv)
                fl << ", \"bp\": \"e\"";
            event(os, first, nm.str(),
                  r.op == TraceOp::MsgSend ? "s" : "f", r.tick, pid,
                  tidMsg, fl.str());
            break;
          }

          case TraceOp::Abort: {
            nm << "ABORT: " << esc(r.label ? r.label : "?");
            std::ostringstream extra;
            extra << "\"s\": \"g\", \"cat\": \"" << cat << "\", "
                  << argsCommon(r) << ", \"node\": " << r.node << "}";
            event(os, first, nm.str(), "i", r.tick, pid, tidProto,
                  extra.str());
            break;
          }

          default: {
            // Protocol-state instants: cache/dir transitions,
            // spec-bit and time-stamp updates, grants, checkpoints,
            // commits.
            nm << traceOpName(r.op);
            if (r.label)
                nm << " " << esc(r.label);
            std::ostringstream extra;
            extra << "\"s\": \"t\", \"cat\": \"" << cat << "\", "
                  << argsCommon(r) << ", \"old\": " << r.a
                  << ", \"new\": " << r.b << "}";
            int tid = pid == machinePid ? tidIter : tidProto;
            event(os, first, nm.str(), "i", r.tick, pid, tid,
                  extra.str());
            break;
          }
        }
    }

    if (tl)
        counterTracks(os, first, *tl);

    // The critical-path recorder's async track (slow load misses as
    // nested per-component slices) shares the tick timebase.
    const critpath::Recorder &cp = critpath::current();
    if (cp.hasData()) {
        std::string cpEvents;
        cp.appendTraceEvents(cpEvents, first);
        os << cpEvents;
    }

    os << "\n],\n\"displayTimeUnit\": \"ns\",\n"
       << "\"otherData\": {\"recorded\": " << buf.recorded()
       << ", \"dropped\": " << buf.dropped() << "}}\n";
    return os.str();
}

bool
exportChromeTraceFile(const TraceBuffer &buf, const std::string &path,
                      const timeline::Timeline *tl)
{
    std::ofstream os(path, std::ios::trunc);
    if (!os)
        return false;
    os << chromeTraceJson(buf, tl);
    return static_cast<bool>(os);
}

std::string
textSummary(const TraceBuffer &buf, const timeline::Timeline *tl)
{
    uint64_t perOp[numTraceOps] = {};
    std::set<NodeId> nodes;
    Tick lo = maxTick, hi = 0;
    std::ostringstream aborts;

    for (size_t i = 0; i < buf.size(); ++i) {
        const TraceRecord &r = buf.at(i);
        ++perOp[static_cast<size_t>(r.op)];
        if (r.node != invalidNode)
            nodes.insert(r.node);
        if (r.tick < lo)
            lo = r.tick;
        if (r.tick > hi)
            hi = r.tick;
        if (r.op == TraceOp::Abort) {
            aborts << "  tick " << r.tick << " node " << r.node
                   << " loop " << r.loop << " iter " << r.iter
                   << ": " << (r.label ? r.label : "?") << "\n";
        }
    }

    std::ostringstream os;
    os << "trace summary: " << buf.size() << " records retained, "
       << buf.recorded() << " recorded, " << buf.dropped()
       << " dropped";
    if (buf.size())
        os << ", ticks [" << lo << ", " << hi << "], "
           << nodes.size() << " nodes";
    os << "\n";
    for (size_t i = 0; i < numTraceOps; ++i) {
        if (!perOp[i])
            continue;
        TraceOp op = static_cast<TraceOp>(i);
        os << "  " << traceOpName(op) << " ("
           << eventKindName(opCategory(op)) << "): " << perOp[i]
           << "\n";
    }
    std::string ab = aborts.str();
    if (!ab.empty())
        os << "aborts:\n" << ab;
    if (tl) {
        std::string hot = tl->hotSummary();
        if (!hot.empty())
            os << hot;
    }
    const critpath::Recorder &cp = critpath::current();
    if (cp.hasData()) {
        std::string line = cp.summaryLine();
        if (!line.empty())
            os << "critical path: " << line << "\n";
    }
    return os.str();
}

} // namespace trace
} // namespace specrt
