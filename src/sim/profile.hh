/**
 * @file
 * Lightweight host-side profiling hooks for the simulator itself.
 *
 * Two facilities, both free when the compile-time flag is off:
 *
 *  - scoped timers: SPECRT_PROF_SCOPE("tag") accumulates host
 *    nanoseconds and hit counts per tag;
 *  - event-type histograms: the event engine counts fired events per
 *    EventKind, so "where do the ticks go" is answerable per run.
 *
 * Enable with -DSPECRT_PROFILE=ON at configure time (defines the
 * SPECRT_PROFILE macro for the whole build). With the flag off every
 * hook compiles to nothing; `profileEnabled` lets hot paths guard
 * with `if constexpr`.
 */

#ifndef SPECRT_SIM_PROFILE_HH
#define SPECRT_SIM_PROFILE_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace specrt
{

/** Coarse category of a scheduled event (profiling histogram). */
enum class EventKind : uint8_t
{
    Generic,
    Network,
    Cache,
    Directory,
    Processor,
    Sched,
    Spec,
    NumKinds,
};

constexpr size_t numEventKinds =
    static_cast<size_t>(EventKind::NumKinds);

/** Name of an event kind, e.g.\ "network". */
const char *eventKindName(EventKind k);

#ifdef SPECRT_PROFILE
constexpr bool profileEnabled = true;
#else
constexpr bool profileEnabled = false;
#endif

namespace prof
{

/** One named timer: total host time and hit count. */
struct Counter
{
    std::string name;
    uint64_t hits = 0;
    uint64_t ns = 0;
};

/**
 * Process-wide profile registry. Counter references returned by
 * counter() stay valid for the life of the process (callers cache
 * them in function-local statics via SPECRT_PROF_SCOPE).
 */
class Registry
{
  public:
    static Registry &instance();

    /** Find or create the counter for @p name. */
    Counter &counter(const std::string &name);

    /** Count one fired event of kind @p k. */
    void
    recordEvent(EventKind k)
    {
        ++eventHist_[static_cast<size_t>(k)];
    }

    const std::array<uint64_t, numEventKinds> &
    eventHist() const
    {
        return eventHist_;
    }

    /** All counters, in creation order. */
    std::vector<const Counter *> counters() const;

    /** Human-readable report of timers + event histogram. */
    void report(std::ostream &os) const;

    /** Zero all counters and the histogram. */
    void reset();

  private:
    Registry() = default;

    std::vector<Counter *> ordered;
    std::array<uint64_t, numEventKinds> eventHist_ = {};
};

/** RAII timer adding its lifetime to a Counter. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Counter &c)
        : counter_(c), start(std::chrono::steady_clock::now())
    {}

    ~ScopedTimer()
    {
        auto end = std::chrono::steady_clock::now();
        ++counter_.hits;
        counter_.ns += static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                end - start)
                .count());
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Counter &counter_;
    std::chrono::steady_clock::time_point start;
};

} // namespace prof

#ifdef SPECRT_PROFILE
#define SPECRT_PROF_CONCAT2(a, b) a##b
#define SPECRT_PROF_CONCAT(a, b) SPECRT_PROF_CONCAT2(a, b)
/** Time the enclosing scope under @p tag (a string literal). */
#define SPECRT_PROF_SCOPE(tag)                                          \
    static ::specrt::prof::Counter &SPECRT_PROF_CONCAT(                 \
        specrtProfCounter_, __LINE__) =                                 \
        ::specrt::prof::Registry::instance().counter(tag);              \
    ::specrt::prof::ScopedTimer SPECRT_PROF_CONCAT(specrtProfTimer_,    \
                                                   __LINE__)(           \
        SPECRT_PROF_CONCAT(specrtProfCounter_, __LINE__))
#else
#define SPECRT_PROF_SCOPE(tag) do {} while (0)
#endif

} // namespace specrt

#endif // SPECRT_SIM_PROFILE_HH
