#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace specrt
{

namespace
{

LogSink userSink;
bool throwOnFatal = false;
std::mutex logMutex;

#ifndef NDEBUG
/**
 * Reentrancy detector (debug builds). The simulator is
 * single-threaded (see logging.hh), so `inEmit` needs no atomicity:
 * it is only ever observed set by the same thread re-entering
 * through a misbehaving sink. That path would otherwise deadlock on
 * the non-recursive logMutex, so report directly to stderr -- going
 * through SPECRT_ASSERT/panic() would recurse into emit() again --
 * and abort.
 */
bool inEmit = false;

void
reentrancyAbort(const char *what)
{
    std::fprintf(stderr,
                 "panic: %s during log emission -- LogSinks must not "
                 "log or swap sinks (see the threading contract in "
                 "sim/logging.hh)\n",
                 what);
    std::abort();
}
#endif

std::string
vformat(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(len));
}

void
emit(LogLevel level, const std::string &msg)
{
#ifndef NDEBUG
    if (inEmit)
        reentrancyAbort("log call from a LogSink");
#endif
    std::lock_guard<std::mutex> guard(logMutex);
#ifndef NDEBUG
    struct Flag
    {
        Flag() { inEmit = true; }
        ~Flag() { inEmit = false; }
    } flag; // exception-safe: a throwing sink must not wedge the flag
#endif
    if (userSink) {
        userSink(level, msg);
    } else {
        std::fprintf(stderr, "%s: %s\n", logLevelName(level), msg.c_str());
    }
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "unknown";
}

LogSink
setLogSink(LogSink sink)
{
#ifndef NDEBUG
    if (inEmit)
        reentrancyAbort("setLogSink()");
#endif
    std::lock_guard<std::mutex> guard(logMutex);
    LogSink old = userSink;
    userSink = std::move(sink);
    return old;
}

void
setLogThrowOnFatal(bool throw_on_fatal)
{
    throwOnFatal = throw_on_fatal;
}

void
assertFail(const char *cond, const char *file, int line,
           const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::string full = "assertion '" + std::string(cond) + "' failed at " +
                       file + ":" + std::to_string(line) + ": " + msg;
    emit(LogLevel::Panic, full);
    if (throwOnFatal)
        throw FatalError{LogLevel::Panic, full};
    std::abort();
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    emit(LogLevel::Panic, msg);
    if (throwOnFatal)
        throw FatalError{LogLevel::Panic, msg};
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    emit(LogLevel::Fatal, msg);
    if (throwOnFatal)
        throw FatalError{LogLevel::Fatal, msg};
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    emit(LogLevel::Warn, msg);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    emit(LogLevel::Inform, msg);
}

} // namespace specrt
