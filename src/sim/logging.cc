#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "sim/sim_context.hh"

namespace specrt
{

namespace
{

/**
 * Serializes only the default-stderr path: per-context sinks are
 * single-threaded by the SimContext contract and touch nothing
 * shared, but two contexts without sinks both write to the one
 * stderr, and their lines must not interleave mid-message.
 */
std::mutex stderrMutex;

#ifndef NDEBUG
/**
 * Reentrancy detector (debug builds). Each simulator instance is
 * single-threaded (see logging.hh), so a thread-local flag suffices:
 * it is only ever observed set by the same thread re-entering
 * through a misbehaving sink. Report directly to stderr -- going
 * through SPECRT_ASSERT/panic() would recurse into emit() again --
 * and abort.
 */
thread_local bool inEmit = false;

void
reentrancyAbort(const char *what)
{
    std::fprintf(stderr,
                 "panic: %s during log emission -- LogSinks must not "
                 "log or swap sinks (see the threading contract in "
                 "sim/logging.hh)\n",
                 what);
    std::abort();
}
#endif

std::string
vformat(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(len));
}

void
emit(LogLevel level, const std::string &msg)
{
#ifndef NDEBUG
    if (inEmit)
        reentrancyAbort("log call from a LogSink");
#endif
#ifndef NDEBUG
    struct Flag
    {
        Flag() { inEmit = true; }
        ~Flag() { inEmit = false; }
    } flag; // exception-safe: a throwing sink must not wedge the flag
#endif
    SimContext &ctx = SimContext::current();
    if (ctx.logSink) {
        ctx.logSink(level, msg);
    } else {
        std::lock_guard<std::mutex> guard(stderrMutex);
        std::fprintf(stderr, "%s: %s\n", logLevelName(level), msg.c_str());
    }
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "unknown";
}

LogSink
setLogSink(LogSink sink)
{
#ifndef NDEBUG
    if (inEmit)
        reentrancyAbort("setLogSink()");
#endif
    SimContext &ctx = SimContext::current();
    LogSink old = std::move(ctx.logSink);
    ctx.logSink = std::move(sink);
    return old;
}

void
setLogThrowOnFatal(bool throw_on_fatal)
{
    SimContext::current().logThrowOnFatal = throw_on_fatal;
}

void
assertFail(const char *cond, const char *file, int line,
           const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::string full = "assertion '" + std::string(cond) + "' failed at " +
                       file + ":" + std::to_string(line) + ": " + msg;
    emit(LogLevel::Panic, full);
    if (SimContext::current().logThrowOnFatal)
        throw FatalError{LogLevel::Panic, full};
    std::abort();
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    emit(LogLevel::Panic, msg);
    if (SimContext::current().logThrowOnFatal)
        throw FatalError{LogLevel::Panic, msg};
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    emit(LogLevel::Fatal, msg);
    if (SimContext::current().logThrowOnFatal)
        throw FatalError{LogLevel::Fatal, msg};
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    emit(LogLevel::Warn, msg);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    emit(LogLevel::Inform, msg);
}

} // namespace specrt
