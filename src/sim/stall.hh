/**
 * @file
 * Stall-attribution engine: charge every processor-idle tick to
 * exactly one cause.
 *
 * The Fig. 12 breakdown (runtime/processor.hh) already splits each
 * processor's ticks into busy / sync / mem, but "mem" lumps together
 * very different waits: the home directory queue, network transit,
 * watchdog retry backoff, and the memory service itself. The paper's
 * evaluation -- and the ROADMAP-4 scheme advisor -- need the split:
 * a run bounded by directory occupancy wants a different remedy than
 * one bounded by network hops.
 *
 * The Engine keeps one per-node accumulator per Cause. Hot paths feed
 * it through the free functions below, which follow the trace.hh /
 * timeline.hh guard discipline: a thread-local latch makes the
 * disabled case one predictable branch, and refreshEnabled() re-syncs
 * the latch when the current context changes or an engine is
 * (un)installed. The engine itself is owned by the LoopExecutor of
 * the profiled run and published through the current SimContext (the
 * ScheduleController pattern), so protocol engines built deep inside
 * the machine reach it without plumbing.
 *
 * Attribution model
 * -----------------
 * A node has at most one load miss outstanding (mem/cache_ctrl.hh),
 * so the engine keeps one pending-load scratch record per node:
 *
 *  - cache_ctrl opens it on a load miss (loadBegin) and credits each
 *    watchdog retry window (retryWindow);
 *  - dir_ctrl credits the home-queue + controller-occupancy wait of
 *    the matching request (dirWait), matched by (requester, txnSeq);
 *  - the network credits each hop of the request/forward/reply legs
 *    (netLeg), same matching;
 *  - the processor closes it when the load completes (loadWait),
 *    reporting the wait it actually charged to "mem"; the engine
 *    reconciles: component credits are clamped so they never exceed
 *    the measured wait (retry, then net, then dir give back first),
 *    and the unexplained remainder is charged to Cause::LoadMiss
 *    (the memory service itself).
 *
 * Credits for transactions without a matching scratch record (store
 * transactions, stray retried messages) are dropped, never charged:
 * over-attribution would break the accounting invariant below.
 *
 * The executor brackets every simulated phase with beginPhase() /
 * settlePhase(). settlePhase() charges each node's unattributed
 * remainder (phase ticks - busy - stalls charged this phase) to a
 * phase-default cause -- Barrier for phase tails, CommitSerial for
 * merge/commit phases, AbortRedo for restore + serial re-execution --
 * and, should attribution ever exceed the phase length (fault
 * injection can misalign a retry window), deterministically gives
 * back the excess. The invariant
 *
 *     busy(n) + sum over causes of stall(n, c) == run ticks
 *
 * therefore holds exactly, per node, by construction; tests assert
 * it tick-for-tick.
 *
 * The engine is a StatGroup ("stall") of per-node VectorStats, so
 * handing it to timeline::RunSampler::addStatDelta() yields
 * delta.stall.* timeline series for free.
 */

#ifndef SPECRT_SIM_STALL_HH
#define SPECRT_SIM_STALL_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace specrt
{

namespace critpath
{
class Recorder;
}

namespace stall
{

/** Why a processor tick was not busy. */
enum class Cause : uint8_t
{
    LoadMiss,     ///< load miss in flight (memory service itself)
    DirQueue,     ///< queued behind a txn / controller occupancy
    NetTransit,   ///< network hops of the miss transaction
    RetryBackoff, ///< watchdog retry windows (lost/slow messages)
    Barrier,      ///< barrier imbalance + barrier episodes
    SchedWait,    ///< dynamic-scheduling lock serialization
    CommitSerial, ///< commit/validate/merge serialization
    AbortRedo,    ///< failed-speculation restore + serial redo
    Other,        ///< attributed to no specific component
    NumCauses,
};

constexpr size_t numCauses = static_cast<size_t>(Cause::NumCauses);

/** Stable stat/report name of a cause, e.g.\ "dir_queue". */
const char *causeName(Cause c);

/** Hyphenated human name for reports, e.g.\ "dir-queue". */
const char *causePrettyName(Cause c);

/**
 * Per-run cost breakdown, exposed through RunResult
 * (core/loop_exec.hh). This is the stable interface downstream
 * consumers -- the ROADMAP-4 online scheme advisor, the RCP backend
 * comparison -- read; extend it, do not rearrange it.
 *
 * All cycle figures are summed over nodes. The accounting invariant
 * guarantees busy + sum(stalls) == numProcs * perNodeTicks exactly.
 */
struct CostBreakdown
{
    /** The profiler was enabled for this run (else all zeros). */
    bool valid = false;
    int numProcs = 0;
    /** Settled run length (equals RunResult::totalTicks). */
    double perNodeTicks = 0;
    double busy = 0;
    std::array<double, numCauses> stalls{};

    double stallOf(Cause c) const
    {
        return stalls[static_cast<size_t>(c)];
    }
    /** Sum of every stall cause. */
    double stallTotal() const;
    /** The cause holding the most stall cycles (ties: lowest). */
    Cause dominantCause() const;
    /** Share of total stall time held by the dominant cause [0,1]. */
    double dominantShare() const;
    /** One-line report naming the dominant cost component. */
    std::string summary() const;
};

/** Per-node stall accounting for one profiled run. */
class Engine : public StatGroup
{
  public:
    explicit Engine(int num_procs);

    int numProcs() const { return nProcs; }

    // --- hot-path feeds (via the free functions below) ----------------

    /** A load miss left node @p n (txn sequence @p seq). */
    void loadBegin(NodeId n, uint64_t seq, Addr line, Addr elem,
                   IterNum iter, NodeId home, Tick now);

    /** The home dir held @p n's txn @p seq for @p wait cycles. */
    void dirWait(NodeId n, uint64_t seq, double wait);

    /** One network leg of @p n's txn @p seq took @p hop cycles. */
    void netLeg(NodeId n, uint64_t seq, double hop);

    /** Node @p n's txn @p seq sat out a retry window of @p w cycles. */
    void retryWindow(NodeId n, uint64_t seq, double w);

    /**
     * Node @p n's outstanding load completed after waiting @p wait
     * cycles (the amount the processor charged to "mem"). Reconciles
     * component credits against the measured wait, charges the
     * remainder to LoadMiss, and emits the transaction record to the
     * critical-path recorder (when attached).
     */
    void loadWait(NodeId n, double wait, Tick now);

    /** Charge @p t cycles on node @p n to @p c directly. */
    void charge(NodeId n, Cause c, double t);

    // --- phase bracketing (loop_exec) ---------------------------------

    /** Mark the start of a simulated phase. */
    void beginPhase();

    /**
     * Close the current phase of length @p phase_ticks: each node's
     * busy delta is recorded, the unattributed remainder is charged
     * to @p residual_cause, and any over-attribution is given back
     * (see file comment). @p busy_delta has one entry per node.
     */
    void settlePhase(double phase_ticks,
                     const std::vector<double> &busy_delta,
                     Cause residual_cause);

    // --- inspection ---------------------------------------------------

    double busyOf(NodeId n) const { return busy[n]; }
    double total(NodeId n, Cause c) const
    {
        return (*causes[static_cast<size_t>(c)])[n];
    }
    /** Sum of every cause on node @p n. */
    double attributed(NodeId n) const;
    /** Sum of @p c over all nodes. */
    double causeTotal(Cause c) const
    {
        return causes[static_cast<size_t>(c)]->total();
    }
    /** Run ticks settled so far (same for every node). */
    double settledTicks() const { return settled; }

    /** Critical-path recorder fed by loadWait() (not owned). */
    void attachRecorder(critpath::Recorder *r) { recorder = r; }

  private:
    /** The (single) outstanding load miss of one node. */
    struct PendingLoad
    {
        bool open = false;
        uint64_t seq = 0;
        Addr line = 0;
        Addr elem = 0;
        IterNum iter = 0;
        NodeId home = 0;
        Tick start = 0;
        double dir = 0;
        double net = 0;
        double retry = 0;
    };

    int nProcs;
    VectorStat busy;
    std::array<std::unique_ptr<VectorStat>, numCauses> causes;
    Scalar overrun;
    std::vector<PendingLoad> pending;
    /** Per-node per-cause totals at beginPhase() (settle deltas). */
    std::vector<std::array<double, numCauses>> phaseMark;
    double settled = 0;
    critpath::Recorder *recorder = nullptr;
};

/** Mirror of "an engine is installed" for the current context. */
extern thread_local bool tlsStallOn;

/** Cheap hot-path guard; true when an engine collects. */
inline bool enabled() { return tlsStallOn; }

/** Re-sync the thread-local latch with the current context. */
void refreshEnabled();

/**
 * Publish @p e as the current context's engine (null uninstalls).
 * Refreshes the latch. The caller keeps ownership.
 */
void install(Engine *e);

/** The current context's engine (null when none installed). */
Engine *current();

// --- hot-path feeds ---------------------------------------------------
// One branch when disabled; instrumentation sites call these
// unconditionally.

inline void
loadBegin(NodeId n, uint64_t seq, Addr line, Addr elem, IterNum iter,
          NodeId home, Tick now)
{
    if (enabled())
        current()->loadBegin(n, seq, line, elem, iter, home, now);
}

inline void
dirWait(NodeId n, uint64_t seq, double wait)
{
    if (enabled())
        current()->dirWait(n, seq, wait);
}

inline void
netLeg(NodeId n, uint64_t seq, double hop)
{
    if (enabled())
        current()->netLeg(n, seq, hop);
}

inline void
retryWindow(NodeId n, uint64_t seq, double w)
{
    if (enabled())
        current()->retryWindow(n, seq, w);
}

inline void
loadWait(NodeId n, double wait, Tick now)
{
    if (enabled())
        current()->loadWait(n, wait, now);
}

inline void
charge(NodeId n, Cause c, double t)
{
    if (enabled())
        current()->charge(n, c, t);
}

/** Write-buffer / drain waits: memory service, like a load miss. */
inline void
memWait(NodeId n, double t)
{
    if (enabled())
        current()->charge(n, Cause::LoadMiss, t);
}

/** Scheduling-lock grant delays. */
inline void
schedWait(NodeId n, double t)
{
    if (enabled())
        current()->charge(n, Cause::SchedWait, t);
}

} // namespace stall
} // namespace specrt

#endif // SPECRT_SIM_STALL_HH
