/**
 * @file
 * Fundamental scalar types shared by every subsystem of specrt.
 *
 * The simulator counts time in processor cycles of the modeled
 * 200-MHz cores (one Tick == one cycle). Addresses are byte
 * addresses in the modeled global physical address space.
 */

#ifndef SPECRT_SIM_TYPES_HH
#define SPECRT_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace specrt
{

/** Simulated time, in processor cycles. */
using Tick = uint64_t;

/** A duration, in processor cycles. */
using Cycles = uint64_t;

/** Byte address in the modeled global physical address space. */
using Addr = uint64_t;

/** Node (processor/memory-module/directory) identifier. */
using NodeId = int32_t;

/** Loop iteration number (1-based inside a speculative loop). */
using IterNum = int64_t;

/** Sentinel for "no node". */
constexpr NodeId invalidNode = -1;

/** Sentinel for "no tick scheduled". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Sentinel address. */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

} // namespace specrt

#endif // SPECRT_SIM_TYPES_HH
