/**
 * @file
 * A move-only `void()` callable with a small-buffer optimization.
 *
 * The event engine schedules millions of short-lived callbacks whose
 * captures are a few pointers and integers. std::function heap-
 * allocates many of those (and libstdc++'s SBO only covers 16 bytes);
 * SmallFunction stores any nothrow-movable callable up to inlineBytes
 * directly inside the object, so the common schedule/fire cycle does
 * zero heap allocations. Larger callables fall back to a single heap
 * allocation, same as std::function.
 */

#ifndef SPECRT_SIM_SMALL_FUNCTION_HH
#define SPECRT_SIM_SMALL_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace specrt
{

class SmallFunction
{
  public:
    /** Inline capacity: sized for captures of a few pointers. */
    static constexpr size_t inlineBytes = 48;

    SmallFunction() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    SmallFunction(F &&f) // NOLINT: implicit by design
    {
        assign(std::forward<F>(f));
    }

    SmallFunction(SmallFunction &&other) noexcept { moveFrom(other); }

    SmallFunction &
    operator=(SmallFunction &&other) noexcept
    {
        if (this != &other) {
            clear();
            moveFrom(other);
        }
        return *this;
    }

    SmallFunction(const SmallFunction &) = delete;
    SmallFunction &operator=(const SmallFunction &) = delete;

    ~SmallFunction() { clear(); }

    explicit operator bool() const { return invoke_ != nullptr; }

    void operator()() { invoke_(buf); }

    /** Drop the held callable (back to the empty state). */
    void
    clear()
    {
        if (invoke_) {
            relocate_(buf, nullptr);
            invoke_ = nullptr;
            relocate_ = nullptr;
        }
    }

    /** True when the callable lives in the inline buffer (tests). */
    template <typename F>
    static constexpr bool
    storedInline()
    {
        return fitsInline<std::decay_t<F>>();
    }

  private:
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename F>
    void
    assign(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf)) Fn(std::forward<F>(f));
            invoke_ = [](void *p) {
                (*std::launder(reinterpret_cast<Fn *>(p)))();
            };
            // dst == nullptr means "just destroy the source".
            relocate_ = [](void *src, void *dst) {
                Fn *s = std::launder(reinterpret_cast<Fn *>(src));
                if (dst)
                    ::new (dst) Fn(std::move(*s));
                s->~Fn();
            };
        } else {
            *reinterpret_cast<Fn **>(static_cast<void *>(buf)) =
                new Fn(std::forward<F>(f));
            invoke_ = [](void *p) { (**reinterpret_cast<Fn **>(p))(); };
            relocate_ = [](void *src, void *dst) {
                Fn **s = reinterpret_cast<Fn **>(src);
                if (dst)
                    *reinterpret_cast<Fn **>(dst) = *s;
                else
                    delete *s;
            };
        }
    }

    void
    moveFrom(SmallFunction &other) noexcept
    {
        invoke_ = other.invoke_;
        relocate_ = other.relocate_;
        if (invoke_)
            relocate_(other.buf, buf);
        other.invoke_ = nullptr;
        other.relocate_ = nullptr;
    }

    alignas(std::max_align_t) unsigned char buf[inlineBytes];
    void (*invoke_)(void *) = nullptr;
    void (*relocate_)(void *, void *) = nullptr;
};

} // namespace specrt

#endif // SPECRT_SIM_SMALL_FUNCTION_HH
