/**
 * @file
 * A move-only callable with a small-buffer optimization.
 *
 * The event engine schedules millions of short-lived callbacks whose
 * captures are a few pointers and integers. std::function heap-
 * allocates many of those (and libstdc++'s SBO only covers 16 bytes);
 * SmallCallback stores any nothrow-movable callable up to inlineBytes
 * directly inside the object, so the common schedule/fire cycle does
 * zero heap allocations. Larger callables fall back to a single heap
 * allocation, same as std::function.
 *
 * SmallFunction is the `void()` specialization the event queue uses;
 * the memory system uses SmallCallback<void(uint64_t)> for load
 * completions.
 */

#ifndef SPECRT_SIM_SMALL_FUNCTION_HH
#define SPECRT_SIM_SMALL_FUNCTION_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace specrt
{

/**
 * Default inline capacity. Sized so the largest hot-path captures
 * stay inline: a load-completion continuation holding a LoadDone
 * (56 bytes) plus the loaded value is 64 bytes.
 */
constexpr size_t smallCallbackInlineBytes = 80;

template <typename Sig, size_t N = smallCallbackInlineBytes>
class SmallCallback;

template <typename R, typename... Args, size_t N>
class SmallCallback<R(Args...), N>
{
  public:
    /** Inline capacity of this instantiation. */
    static constexpr size_t inlineBytes = N;

    SmallCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &,
                                        Args...>>>
    SmallCallback(F &&f) // NOLINT: implicit by design
    {
        assign(std::forward<F>(f));
    }

    SmallCallback(SmallCallback &&other) noexcept { moveFrom(other); }

    SmallCallback &
    operator=(SmallCallback &&other) noexcept
    {
        if (this != &other) {
            clear();
            moveFrom(other);
        }
        return *this;
    }

    SmallCallback(const SmallCallback &) = delete;
    SmallCallback &operator=(const SmallCallback &) = delete;

    ~SmallCallback() { clear(); }

    explicit operator bool() const { return invoke_ != nullptr; }

    R
    operator()(Args... args)
    {
        return invoke_(buf, std::forward<Args>(args)...);
    }

    /** Drop the held callable (back to the empty state). */
    void
    clear()
    {
        if (invoke_) {
            // Trivial inline callables (relocate_ == nullptr) need no
            // destructor call -- the schedule/fire cycle of a
            // pointer-capturing lambda touches no function pointers
            // beyond the invoke itself.
            if (relocate_)
                relocate_(buf, nullptr);
            invoke_ = nullptr;
        }
    }

    /**
     * Construct a callable directly inside this object -- no
     * intermediate SmallCallback, so the hot schedule path performs
     * zero relocations. Passing a SmallCallback (even an lvalue)
     * moves from it.
     */
    template <typename F>
    void
    emplace(F &&f)
    {
        clear();
        if constexpr (std::is_same_v<std::decay_t<F>, SmallCallback>) {
            moveFrom(f);
        } else {
            assign(std::forward<F>(f));
        }
    }

    /** True when the callable lives in the inline buffer (tests). */
    template <typename F>
    static constexpr bool
    storedInline()
    {
        return fitsInline<std::decay_t<F>>();
    }

  private:
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename F>
    void
    assign(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf)) Fn(std::forward<F>(f));
            invoke_ = [](void *p, Args... args) -> R {
                return (*std::launder(reinterpret_cast<Fn *>(p)))(
                    std::forward<Args>(args)...);
            };
            if constexpr (std::is_trivially_destructible_v<Fn> &&
                          std::is_trivially_copyable_v<Fn>) {
                // Trivial case: a null relocate_ marks the callable
                // as memcpy-movable with nothing to destroy.
                relocate_ = nullptr;
            } else {
                // dst == nullptr means "just destroy the source".
                relocate_ = [](void *src, void *dst) {
                    Fn *s = std::launder(reinterpret_cast<Fn *>(src));
                    if (dst)
                        ::new (dst) Fn(std::move(*s));
                    s->~Fn();
                };
            }
        } else {
            *reinterpret_cast<Fn **>(static_cast<void *>(buf)) =
                new Fn(std::forward<F>(f));
            invoke_ = [](void *p, Args... args) -> R {
                return (**reinterpret_cast<Fn **>(p))(
                    std::forward<Args>(args)...);
            };
            relocate_ = [](void *src, void *dst) {
                Fn **s = reinterpret_cast<Fn **>(src);
                if (dst)
                    *reinterpret_cast<Fn **>(dst) = *s;
                else
                    delete *s;
            };
        }
    }

    void
    moveFrom(SmallCallback &other) noexcept
    {
        invoke_ = other.invoke_;
        relocate_ = other.relocate_;
        if (invoke_) {
            if (relocate_)
                relocate_(other.buf, buf);
            else
                std::memcpy(buf, other.buf, inlineBytes);
        }
        other.invoke_ = nullptr;
        other.relocate_ = nullptr;
    }

    alignas(std::max_align_t) unsigned char buf[inlineBytes];
    R (*invoke_)(void *, Args...) = nullptr;
    void (*relocate_)(void *, void *) = nullptr;
};

/** The event queue's callback type. */
using SmallFunction = SmallCallback<void()>;

} // namespace specrt

#endif // SPECRT_SIM_SMALL_FUNCTION_HH
