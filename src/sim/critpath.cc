#include "sim/critpath.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sim/config.hh"
#include "sim/sim_context.hh"

namespace specrt
{
namespace critpath
{

thread_local bool tlsCritpathOn = false;

Recorder &
current()
{
    return SimContext::current().critpathData();
}

void
refreshEnabled()
{
    tlsCritpathOn = SimContext::current().critpathData().isOn();
}

void
Recorder::enable()
{
    on = true;
    refreshEnabled();
}

void
Recorder::disable()
{
    on = false;
    refreshEnabled();
}

// --- collection -------------------------------------------------------

namespace
{

/** Slowest first; every tiebreak deterministic (campaign merges). */
bool
slowerThan(const TxnRecord &a, const TxnRecord &b)
{
    if (a.latency() != b.latency())
        return a.latency() > b.latency();
    if (a.start != b.start)
        return a.start < b.start;
    if (a.node != b.node)
        return a.node < b.node;
    return a.seq < b.seq;
}

} // namespace

void
Recorder::addTxn(const TxnRecord &r)
{
    ++txnsSeen;
    HomeAgg &h = homeAgg[r.home];
    h.dirWait += r.dirWait;
    ++h.txns;
    h.minElem = std::min(h.minElem, r.elem);
    h.maxElem = std::max(h.maxElem, r.elem);

    top.push_back(r);
    std::sort(top.begin(), top.end(), slowerThan);
    if (top.size() > topK)
        top.resize(topK);
}

void
Recorder::addRunTotals(double busy,
                       const std::array<double, stall::numCauses>
                           &stalls,
                       double run_ticks, int nprocs)
{
    ++runsSeen;
    busyTotal += busy;
    for (size_t c = 0; c < stall::numCauses; ++c)
        stallTotals[c] += stalls[c];
    runTicksTotal += run_ticks;
    procsMax = std::max(procsMax, nprocs);
}

void
Recorder::merge(const Recorder &shard)
{
    runsSeen += shard.runsSeen;
    txnsSeen += shard.txnsSeen;
    busyTotal += shard.busyTotal;
    runTicksTotal += shard.runTicksTotal;
    procsMax = std::max(procsMax, shard.procsMax);
    for (size_t c = 0; c < stall::numCauses; ++c)
        stallTotals[c] += shard.stallTotals[c];
    for (const auto &kv : shard.homeAgg) {
        HomeAgg &h = homeAgg[kv.first];
        h.dirWait += kv.second.dirWait;
        h.txns += kv.second.txns;
        h.minElem = std::min(h.minElem, kv.second.minElem);
        h.maxElem = std::max(h.maxElem, kv.second.maxElem);
    }
    top.insert(top.end(), shard.top.begin(), shard.top.end());
    std::sort(top.begin(), top.end(), slowerThan);
    if (top.size() > topK)
        top.resize(topK);
}

// --- reports ----------------------------------------------------------

std::string
Recorder::summaryLine() const
{
    double stall_sum = 0;
    for (double v : stallTotals)
        stall_sum += v;
    if (stall_sum <= 0)
        return "";

    size_t dom = 0;
    for (size_t c = 1; c < stall::numCauses; ++c)
        if (stallTotals[c] > stallTotals[dom])
            dom = c;
    stall::Cause cause = static_cast<stall::Cause>(dom);
    long pct = std::lround(100.0 * stallTotals[dom] / stall_sum);

    char buf[256];
    std::snprintf(buf, sizeof(buf), "run bounded %ld%% by %s", pct,
                  stall::causePrettyName(cause));
    std::string line = buf;

    if (cause == stall::Cause::DirQueue && !homeAgg.empty()) {
        NodeId hot = homeAgg.begin()->first;
        double hot_wait = -1;
        for (const auto &kv : homeAgg) {
            if (kv.second.dirWait > hot_wait) {
                hot_wait = kv.second.dirWait;
                hot = kv.first;
            }
        }
        const HomeAgg &h = homeAgg.at(hot);
        if (h.txns > 0 && h.minElem <= h.maxElem) {
            std::snprintf(buf, sizeof(buf),
                          " at home node %d, elements 0x%llx-0x%llx",
                          static_cast<int>(hot),
                          static_cast<unsigned long long>(h.minElem),
                          static_cast<unsigned long long>(h.maxElem));
            line += buf;
        }
    }
    return line;
}

namespace
{

/** Integer-exact numeric literal (matches the timeline's putValue). */
std::string
num(double v)
{
    char buf[40];
    if (v == static_cast<double>(static_cast<long long>(v))) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    return buf;
}

std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (char ch : s) {
        switch (ch) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char esc[8];
                std::snprintf(esc, sizeof(esc), "\\u%04x", ch);
                out += esc;
            } else {
                out += ch;
            }
        }
    }
    out += '"';
    return out;
}

void
event(std::string &out, bool &first, const std::string &body)
{
    if (!first)
        out += ',';
    first = false;
    out += '\n';
    out += body;
}

/** One async begin/end pair on the critpath track. */
void
asyncSlice(std::string &out, bool &first, const std::string &id,
           const std::string &name, NodeId tid, double ts_b,
           double ts_e, const std::string &args)
{
    std::string b = "{\"cat\":\"critpath\",\"name\":" + jsonStr(name) +
                    ",\"ph\":\"b\",\"id\":" + jsonStr(id) +
                    ",\"ts\":" + num(ts_b) +
                    ",\"pid\":" + std::to_string(Recorder::perfettoPid) +
                    ",\"tid\":" + std::to_string(tid);
    if (!args.empty())
        b += ",\"args\":" + args;
    b += "}";
    event(out, first, b);
    event(out, first,
          "{\"cat\":\"critpath\",\"name\":" + jsonStr(name) +
              ",\"ph\":\"e\",\"id\":" + jsonStr(id) +
              ",\"ts\":" + num(ts_e) +
              ",\"pid\":" + std::to_string(Recorder::perfettoPid) +
              ",\"tid\":" + std::to_string(tid) + "}");
}

} // namespace

void
Recorder::appendTraceEvents(std::string &out, bool &first) const
{
    if (top.empty() && !hasData())
        return;

    event(out, first,
          "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
              std::to_string(perfettoPid) +
              ",\"args\":{\"name\":\"critical path\"}}");

    std::vector<NodeId> nodes;
    for (const TxnRecord &t : top)
        if (std::find(nodes.begin(), nodes.end(), t.node) ==
            nodes.end())
            nodes.push_back(t.node);
    std::sort(nodes.begin(), nodes.end());
    for (NodeId n : nodes)
        event(out, first,
              "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
                  std::to_string(perfettoPid) +
                  ",\"tid\":" + std::to_string(n) +
                  ",\"args\":{\"name\":\"node " + std::to_string(n) +
                  " slow loads\"}}");

    for (const TxnRecord &t : top) {
        std::string id =
            std::to_string(t.node) + ":" + std::to_string(t.seq);
        char ebuf[64];
        std::snprintf(ebuf, sizeof(ebuf), "load 0x%llx",
                      static_cast<unsigned long long>(t.elem));
        std::string args =
            "{\"home\":" + std::to_string(t.home) +
            ",\"iter\":" + std::to_string(t.iter) +
            ",\"seq\":" + std::to_string(t.seq) +
            ",\"dir_wait\":" + num(t.dirWait) +
            ",\"net\":" + num(t.net) +
            ",\"retry\":" + num(t.retry) +
            ",\"service\":" + num(t.service) + "}";
        asyncSlice(out, first, id, ebuf, t.node,
                   static_cast<double>(t.start),
                   static_cast<double>(t.end), args);

        // Child slices: canonical component order request-net,
        // dir-queue, retry, service (+reply-net). The remainder of
        // the measured latency folds into the service slice.
        double ts = static_cast<double>(t.start);
        double net_req = std::floor(t.net / 2);
        double net_rep = t.net - net_req;
        double service = static_cast<double>(t.end) -
                         static_cast<double>(t.start) - t.net -
                         t.dirWait - t.retry;
        if (service < 0)
            service = 0;
        struct Seg
        {
            const char *name;
            double len;
        } segs[] = {
            {"net request", net_req}, {"dir-queue", t.dirWait},
            {"retry-backoff", t.retry}, {"service", service},
            {"net reply", net_rep},
        };
        int si = 0;
        for (const Seg &s : segs) {
            ++si;
            if (s.len <= 0)
                continue;
            asyncSlice(out, first,
                       id + ":" + std::to_string(si), s.name, t.node,
                       ts, ts + s.len, "");
            ts += s.len;
        }
    }

    std::string line = summaryLine();
    if (!line.empty())
        event(out, first,
              "{\"name\":\"critpath summary\",\"ph\":\"i\",\"ts\":0,"
              "\"pid\":" +
                  std::to_string(perfettoPid) +
                  ",\"tid\":0,\"s\":\"p\",\"args\":{\"summary\":" +
                  jsonStr(line) + "}}");
}

std::string
Recorder::perfettoJson() const
{
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    appendTraceEvents(out, first);
    out += "\n],\n\"displayTimeUnit\":\"ms\",\n\"critpath\":{";
    out += "\"summary\":" + jsonStr(summaryLine());
    out += ",\"runs\":" + std::to_string(runsSeen);
    out += ",\"txns\":" + std::to_string(txnsSeen);
    out += ",\"procs\":" + std::to_string(procsMax);
    out += ",\"run_ticks\":" + num(runTicksTotal);
    out += ",\"busy\":" + num(busyTotal);
    out += ",\"stall\":{";
    for (size_t c = 0; c < stall::numCauses; ++c) {
        if (c)
            out += ',';
        out += '"';
        out += stall::causeName(static_cast<stall::Cause>(c));
        out += "\":" + num(stallTotals[c]);
    }
    out += "}}}\n";
    return out;
}

// --- config / env wiring ----------------------------------------------

void
applyConfig(const CritpathConfig &cc)
{
    if (!cc.enabled)
        return;
    SimContext &ctx = SimContext::current();
    ctx.critpathData().enable();
    if (!cc.outPath.empty())
        ctx.critpathOutPath = cc.outPath;
}

namespace
{

/** The environment, parsed once per process (thread-safe). */
const CritpathConfig &
envCritpathConfig()
{
    static const CritpathConfig cc = CritpathConfig::fromEnv();
    return cc;
}

} // namespace

bool
maybeEnableFromEnv()
{
    SimContext &ctx = SimContext::current();
    if (!ctx.critpathEnvChecked) {
        ctx.critpathEnvChecked = true;
        const CritpathConfig &cc = envCritpathConfig();
        if (cc.enabled) {
            applyConfig(cc);
            // Like SPECRT_TRACE: the report lands when the context
            // dies, so env-profiled runs leave the file behind
            // without the code under test knowing.
            if (!ctx.critpathOutPath.empty())
                ctx.critpathExportOnDestroy = true;
        }
    }
    return enabled();
}

std::string
summaryLine()
{
    if (!enabled())
        return "";
    return current().summaryLine();
}

} // namespace critpath
} // namespace specrt
