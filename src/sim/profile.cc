#include "sim/profile.hh"

#include <iomanip>

namespace specrt
{

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::Generic: return "generic";
      case EventKind::Network: return "network";
      case EventKind::Cache: return "cache";
      case EventKind::Directory: return "directory";
      case EventKind::Processor: return "processor";
      case EventKind::Sched: return "sched";
      case EventKind::Spec: return "spec";
      default: return "?";
    }
}

namespace prof
{

Registry &
Registry::instance()
{
    static Registry r;
    return r;
}

Counter &
Registry::counter(const std::string &name)
{
    for (Counter *c : ordered) {
        if (c->name == name)
            return *c;
    }
    // Counters are never destroyed: SPECRT_PROF_SCOPE caches
    // references in function-local statics.
    auto *c = new Counter{name, 0, 0};
    ordered.push_back(c);
    return *c;
}

std::vector<const Counter *>
Registry::counters() const
{
    return {ordered.begin(), ordered.end()};
}

void
Registry::report(std::ostream &os) const
{
    os << "profile.timers:\n";
    for (const Counter *c : ordered) {
        double ms = static_cast<double>(c->ns) / 1e6;
        os << "  " << std::left << std::setw(28) << c->name
           << std::right << std::setw(12) << c->hits << " hits"
           << std::setw(12) << std::fixed << std::setprecision(3)
           << ms << " ms\n";
    }
    os << "profile.events_fired:\n";
    for (size_t k = 0; k < numEventKinds; ++k) {
        if (!eventHist_[k])
            continue;
        os << "  " << std::left << std::setw(28)
           << eventKindName(static_cast<EventKind>(k)) << std::right
           << std::setw(12) << eventHist_[k] << "\n";
    }
}

void
Registry::reset()
{
    for (Counter *c : ordered) {
        c->hits = 0;
        c->ns = 0;
    }
    eventHist_.fill(0);
}

} // namespace prof

} // namespace specrt
