#include "sim/fault.hh"

#include "mem/msg.hh"

namespace specrt
{

FaultPlan::FaultPlan(const FaultConfig &config)
    : StatGroup("faults"),
      faultsInjected(this, "faults_injected",
                     "messages faulted (drop + dup + jitter)"),
      drops(this, "drops", "messages dropped in the network"),
      dups(this, "dups", "messages delivered twice"),
      jitters(this, "jitters", "messages given extra latency"),
      cfg(config),
      rng(config.seed)
{
}

void
FaultPlan::reseed(uint64_t seed)
{
    cfg.seed = seed;
    rng.reseed(seed);
}

bool
FaultPlan::netRetransmits(MsgType t)
{
    switch (t) {
      case MsgType::FirstUpdate:
      case MsgType::ROnlyUpdate:
      case MsgType::ReadFirstSig:
      case MsgType::FirstWriteSig:
      case MsgType::CopyOutSig:
        return true;
      default:
        return false;
    }
}

bool
FaultPlan::dropEligible(MsgType t, bool watchdog_enabled)
{
    if (netRetransmits(t))
        return true;
    if (t == MsgType::ReadReq || t == MsgType::WriteReq)
        return watchdog_enabled; // recovered by requester retry only
    return false;
}

bool
FaultPlan::dupEligible(MsgType t, bool watchdog_enabled)
{
    if (dropEligible(t, watchdog_enabled))
        return true;
    switch (t) {
      // Idempotent at the receiver: the cache drops stale replies by
      // transaction sequence number, Inval of an absent/dirty line is
      // ignored, and the directory dedups acks by node bit.
      case MsgType::ReadReply:
      case MsgType::WriteReply:
      case MsgType::Inval:
      case MsgType::InvalAck:
        return true;
      default:
        return false;
    }
}

FaultDecision
FaultPlan::decide(MsgType type)
{
    FaultDecision d;
    if (!_armed || !cfg.anyFaults())
        return d;

    bool watchdog = cfg.watchdogTimeout > 0;

    // Always draw all three variates so the schedule for message k
    // does not depend on the eligibility of messages before it.
    bool want_drop = rng.nextBool(cfg.dropProb);
    bool want_dup = rng.nextBool(cfg.dupProb);
    bool want_jitter = rng.nextBool(cfg.jitterProb);
    Cycles jitter_amt =
        cfg.jitterMaxCycles ? 1 + rng.nextBounded(cfg.jitterMaxCycles)
                            : 0;

    if (want_drop && dropEligible(type, watchdog)) {
        d.drop = true;
        ++drops;
        ++faultsInjected;
        return d; // a dropped message is neither duped nor delayed
    }
    if (want_dup && dupEligible(type, watchdog)) {
        d.duplicate = true;
        ++dups;
        ++faultsInjected;
    }
    if (want_jitter && jitter_amt > 0) {
        d.jitter = jitter_amt;
        ++jitters;
        ++faultsInjected;
    }
    return d;
}

} // namespace specrt
