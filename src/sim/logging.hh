/**
 * @file
 * Error and status reporting in the gem5 idiom.
 *
 * panic()  -- internal simulator bug; never the user's fault. Aborts.
 * fatal()  -- the user asked for something impossible (bad config,
 *             invalid arguments). Exits with an error code.
 * warn()   -- something questionable happened but simulation goes on.
 * inform() -- plain status output.
 *
 * All take printf-style format strings. A LogSink can be installed to
 * capture messages in tests instead of writing to stderr.
 *
 * The sink and the throw-on-fatal flag are INSTANCE-SCOPED: they
 * live in the current SimContext (sim/sim_context.hh), so concurrent
 * simulator instances on different host threads each have their own
 * sink and never observe each other's messages. Contexts without a
 * sink share stderr; a process-wide mutex keeps those lines from
 * interleaving mid-message.
 *
 * Threading contract: each simulator instance is SINGLE-THREADED,
 * and its context must only be active on one host thread at a time.
 * The logging layer follows that contract rather than defending
 * against misuse:
 *
 *  - setLogSink() must not be called while a message is being
 *    emitted. In an event-driven simulator that can only happen by
 *    reentrancy -- a sink that itself calls warn()/inform()/
 *    setLogSink(), or a sink that runs simulator code which logs.
 *    Such a swap would mutate the std::function mid-invocation.
 *  - a sink must not log: emit() is not reentrant, and the sink
 *    would observe a half-delivered message.
 *
 * Debug builds (NDEBUG unset) detect both forms of reentrancy and
 * abort with a diagnostic.
 */

#ifndef SPECRT_SIM_LOGGING_HH
#define SPECRT_SIM_LOGGING_HH

#include <cstdarg>
#include <functional>
#include <string>

namespace specrt
{

/** Severity of a log message. */
enum class LogLevel
{
    Inform,
    Warn,
    Fatal,
    Panic,
};

/** Name of a log level, e.g.\ "warn". */
const char *logLevelName(LogLevel level);

/**
 * Callback type for capturing log output. Receives the severity and
 * the fully formatted message (no trailing newline).
 */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/**
 * Install a log sink on the CURRENT SimContext, returning the
 * previous one. Passing a null function restores the default
 * (stderr) sink.
 */
LogSink setLogSink(LogSink sink);

/**
 * Whether fatal()/panic() on the CURRENT SimContext throw FatalError
 * instead of terminating the process. Tests enable this to assert on
 * failure paths; the campaign runner enables it per job so one
 * failing job cannot kill the whole campaign.
 */
void setLogThrowOnFatal(bool throw_on_fatal);

/** Exception thrown by fatal()/panic() when throw-on-fatal is set. */
struct FatalError
{
    LogLevel level;
    std::string message;
};

[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Implementation helper for SPECRT_ASSERT; do not call directly. */
[[noreturn]] void assertFail(const char *cond, const char *file,
                             int line, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/** panic() unless the condition holds; requires a message. */
#define SPECRT_ASSERT(cond, ...)                                        \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::specrt::assertFail(#cond, __FILE__, __LINE__,             \
                                 __VA_ARGS__);                          \
        }                                                               \
    } while (0)

} // namespace specrt

#endif // SPECRT_SIM_LOGGING_HH
