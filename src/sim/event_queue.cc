#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace specrt
{

EventId
EventQueue::schedule(Tick when, std::function<void()> callback)
{
    SPECRT_ASSERT(when >= _curTick,
                  "scheduling in the past: when=%llu cur=%llu",
                  (unsigned long long)when, (unsigned long long)_curTick);
    EventId id = nextId++;
    pending.push(Entry{when, nextSeq++, id, std::move(callback)});
    live.insert(id);
    return id;
}

void
EventQueue::deschedule(EventId id)
{
    if (id == invalidEventId || !live.erase(id))
        return; // unknown or already fired: harmless no-op
    if (cancelled.insert(id).second)
        ++numCancelled;
}

void
EventQueue::fireNext()
{
    Entry entry = std::move(const_cast<Entry &>(pending.top()));
    pending.pop();
    auto it = cancelled.find(entry.id);
    if (it != cancelled.end()) {
        cancelled.erase(it);
        --numCancelled;
        return;
    }
    live.erase(entry.id);
    SPECRT_ASSERT(entry.when >= _curTick, "event queue went backwards");
    _curTick = entry.when;
    ++_numFired;
    entry.callback();
}

Tick
EventQueue::run()
{
    stopped = false;
    while (!pending.empty() && !stopped)
        fireNext();
    return _curTick;
}

Tick
EventQueue::runUntil(Tick limit)
{
    stopped = false;
    while (!pending.empty() && !stopped && pending.top().when <= limit)
        fireNext();
    return _curTick;
}

void
EventQueue::reset()
{
    pending = {};
    live.clear();
    cancelled.clear();
    numCancelled = 0;
    _curTick = 0;
    nextSeq = 0;
    nextId = 1;
    _numFired = 0;
    stopped = false;
}

} // namespace specrt
