#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace specrt
{

EventQueue::~EventQueue()
{
    // Exact-cancel invariant: every live slot corresponds to exactly
    // one pending entry; nothing lingers in auxiliary state. (The old
    // lazy-deletion engine leaked its cancelled-id set here whenever
    // the queue died with pending events.)
    SPECRT_ASSERT(slotsInUse == pendingCount,
                  "event queue leaked auxiliary state: "
                  "%zu live slots vs %zu pending events",
                  slotsInUse, pendingCount);
    SPECRT_ASSERT(fifoDead <= fifo.size() - fifoHead,
                  "event queue FIFO lane corrupt: %zu dead of %zu",
                  fifoDead, fifo.size() - fifoHead);
}

uint32_t
EventQueue::allocSlot()
{
    uint32_t idx;
    if (freeHead != badIndex) {
        idx = freeHead;
        freeHead = slots[idx].nextFree;
    } else {
        idx = static_cast<uint32_t>(slots.size());
        slots.emplace_back();
    }
    ++slotsInUse;
    return idx;
}

void
EventQueue::freeSlot(uint32_t idx)
{
    Slot &s = slots[idx];
    s.cb.clear(); // no-op if already moved out by fire()
    s.loc = LocFree;
    ++s.gen; // stale ids naming this slot stop matching
    s.nextFree = freeHead;
    freeHead = idx;
    --slotsInUse;
}

uint32_t
EventQueue::liveSlotOf(EventId id) const
{
    if (id == invalidEventId)
        return badIndex;
    uint64_t hi = id >> 32;
    if (hi == 0 || hi > slots.size())
        return badIndex;
    auto idx = static_cast<uint32_t>(hi - 1);
    const Slot &s = slots[idx];
    if (s.loc == LocFree || s.gen != static_cast<uint32_t>(id))
        return badIndex;
    return idx;
}

EventId
EventQueue::schedule(Tick when, SmallFunction callback, EventKind kind,
                     uint16_t actor)
{
    return scheduleImpl(when, std::move(callback), kind, actor, false);
}

EventId
EventQueue::scheduleDaemon(Tick when, SmallFunction callback,
                           EventKind kind)
{
    return scheduleImpl(when, std::move(callback), kind, unknownActor,
                        true);
}

EventId
EventQueue::scheduleImpl(Tick when, SmallFunction callback,
                         EventKind kind, uint16_t actor, bool daemon)
{
    SPECRT_ASSERT(when >= _curTick,
                  "scheduling in the past: when=%llu cur=%llu",
                  (unsigned long long)when,
                  (unsigned long long)_curTick);
    uint32_t slot = allocSlot();
    uint64_t seq = nextSeq++;
    Slot &s = slots[slot];
    EventId id = (static_cast<uint64_t>(slot) + 1) << 32 | s.gen;
    s.cb = std::move(callback);
    s.kind = kind;
    s.daemon = daemon;
    s.actor = actor;
    if (daemon)
        ++daemonCount;

    if (when == _curTick) {
        // Fast lane: same-tick events (zero-delay protocol hand-offs)
        // append to a FIFO instead of churning the heap. FIFO entries
        // all carry when == curTick and ascending seq, so the lane is
        // already in fire order.
        s.loc = LocFifo;
        s.pos = static_cast<uint32_t>(fifo.size());
        fifo.push_back(Entry{when, seq, slot});
    } else {
        s.loc = LocHeap;
        size_t i = heap.size();
        heap.push_back(Entry{when, seq, slot});
        s.pos = static_cast<uint32_t>(i);
        heapSiftUp(i);
    }
    ++pendingCount;
    return id;
}

void
EventQueue::deschedule(EventId id)
{
    uint32_t idx = liveSlotOf(id);
    if (idx == badIndex)
        return; // unknown or already fired: harmless no-op

    Slot &s = slots[idx];
    if (s.loc == LocHeap) {
        heapRemove(s.pos);
    } else {
        // FIFO entries die in place (O(1)); the fire loop skips them.
        // The count stays exact: the event is gone from numPending()
        // and its slot is free for reuse immediately.
        fifo[s.pos].slot = badIndex;
        ++fifoDead;
    }
    if (s.daemon)
        --daemonCount;
    freeSlot(idx); // destroys the callback
    --pendingCount;
}

void
EventQueue::heapSiftUp(size_t i)
{
    Entry e = heap[i];
    while (i > 0) {
        size_t parent = (i - 1) / 2;
        if (!before(e, heap[parent]))
            break;
        heap[i] = heap[parent];
        slots[heap[i].slot].pos = static_cast<uint32_t>(i);
        i = parent;
    }
    heap[i] = e;
    slots[e.slot].pos = static_cast<uint32_t>(i);
}

void
EventQueue::heapSiftDown(size_t i)
{
    size_t n = heap.size();
    Entry e = heap[i];
    while (true) {
        size_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && before(heap[child + 1], heap[child]))
            ++child;
        if (!before(heap[child], e))
            break;
        heap[i] = heap[child];
        slots[heap[i].slot].pos = static_cast<uint32_t>(i);
        i = child;
    }
    heap[i] = e;
    slots[e.slot].pos = static_cast<uint32_t>(i);
}

EventQueue::Entry
EventQueue::heapRemove(size_t i)
{
    Entry e = heap[i];
    size_t last = heap.size() - 1;
    if (i != last) {
        heap[i] = heap[last];
        slots[heap[i].slot].pos = static_cast<uint32_t>(i);
        heap.pop_back();
        if (i > 0 && before(heap[i], heap[(i - 1) / 2]))
            heapSiftUp(i);
        else
            heapSiftDown(i);
    } else {
        heap.pop_back();
    }
    return e;
}

void
EventQueue::fifoSkipDead()
{
    while (fifoHead < fifo.size() &&
           fifo[fifoHead].slot == badIndex) {
        ++fifoHead;
        --fifoDead;
    }
    if (fifoHead == fifo.size() && fifoHead > 0) {
        fifo.clear(); // keeps capacity: no allocation next round
        fifoHead = 0;
    }
}

void
EventQueue::fire(const Entry &e)
{
    // Move the callback out before freeing the slot: the callback may
    // itself schedule events, which can reuse (or even reallocate)
    // the slot table.
    Slot &s = slots[e.slot];
    SmallFunction cb = std::move(s.cb);
    EventKind kind = s.kind;
    if constexpr (profileEnabled)
        prof::Registry::instance().recordEvent(kind);
    if (s.daemon)
        --daemonCount;
    freeSlot(e.slot);
    --pendingCount;
    ++_numFired;
    ++_numFiredTotal;
    cb();
    if (postFireHook)
        postFireHook(_curTick, kind);
}

bool
EventQueue::fireNext(Tick limit)
{
    if (controller)
        return fireNextControlled(limit);

    // Only daemon events left: the queue is drained. They stay
    // pending (and unfired) so time never advances past the last
    // piece of real work.
    if (pendingCount == daemonCount)
        return false;

    fifoSkipDead();
    bool haveFifo = fifoHead < fifo.size();
    bool haveHeap = !heap.empty();
    if (!haveFifo && !haveHeap)
        return false;

    // Global fire order is (when, seq) across both lanes.
    bool useFifo = haveFifo &&
                   (!haveHeap || before(fifo[fifoHead], heap[0]));
    if (useFifo) {
        if (fifo[fifoHead].when > limit)
            return false;
        Entry e = fifo[fifoHead];
        ++fifoHead;
        SPECRT_ASSERT(e.when == _curTick,
                      "FIFO lane event not at current tick");
        fire(e);
        return true;
    }

    if (heap[0].when > limit)
        return false;
    Entry e = heapRemove(0);
    SPECRT_ASSERT(e.when >= _curTick, "event queue went backwards");
    // Time only advances here, and only with the FIFO lane empty:
    // a non-empty lane holds (curTick, seq) keys, which win the
    // comparison above against any later-tick heap top.
    _curTick = e.when;
    fire(e);
    return true;
}

bool
EventQueue::fireNextControlled(Tick limit)
{
    if (pendingCount == daemonCount)
        return false;

    fifoSkipDead();
    bool haveFifo = fifoHead < fifo.size();
    bool haveHeap = !heap.empty();
    if (!haveFifo && !haveHeap)
        return false;

    // The minimum pending tick. Live FIFO entries always carry
    // curTick, so with the lane non-empty the minimum is curTick and
    // any heap entries at curTick join the candidate set.
    Tick min_when = haveFifo ? fifo[fifoHead].when : heap[0].when;
    if (haveFifo && haveHeap && heap[0].when < min_when)
        min_when = heap[0].when;
    if (min_when > limit)
        return false;

    // Gather every ready event at min_when from both lanes, then
    // order by seq: candidate 0 is exactly what the uncontrolled
    // path would fire.
    candScratch.clear();
    if (haveFifo) {
        for (size_t p = fifoHead; p < fifo.size(); ++p) {
            if (fifo[p].slot != badIndex)
                candScratch.push_back(
                    {fifo[p].seq, static_cast<uint32_t>(p), false});
        }
    }
    if (haveHeap) {
        for (size_t i = 0; i < heap.size(); ++i) {
            if (heap[i].when == min_when)
                candScratch.push_back(
                    {heap[i].seq, static_cast<uint32_t>(i), true});
        }
    }
    SPECRT_ASSERT(!candScratch.empty(), "controlled fire lost the "
                  "ready set");
    std::sort(candScratch.begin(), candScratch.end(),
              [](const Cand &a, const Cand &b) { return a.seq < b.seq; });

    size_t choice = 0;
    if (candScratch.size() > 1) {
        choiceScratch.clear();
        for (const Cand &c : candScratch) {
            const Entry &e = c.inHeap ? heap[c.idx] : fifo[c.idx];
            const Slot &s = slots[e.slot];
            choiceScratch.push_back(
                {e.when, s.kind, s.actor, s.daemon});
        }
        choice = controller->pick(choiceScratch.data(),
                                  choiceScratch.size());
        if (choice >= candScratch.size())
            choice = candScratch.size() - 1;
    }

    const Cand &c = candScratch[choice];
    Entry e;
    if (c.inHeap) {
        e = heapRemove(c.idx);
        SPECRT_ASSERT(e.when >= _curTick, "event queue went backwards");
        // Advancing to e.when is safe: a live FIFO entry would have
        // forced min_when == curTick, making e.when == curTick too.
        _curTick = e.when;
    } else {
        e = fifo[c.idx];
        SPECRT_ASSERT(e.when == _curTick,
                      "FIFO lane event not at current tick");
        if (c.idx == fifoHead) {
            ++fifoHead;
        } else {
            // Out-of-order pick: retire the entry in place, exactly
            // like a cancellation; the skip loop reclaims it.
            fifo[c.idx].slot = badIndex;
            ++fifoDead;
        }
    }
    fire(e);
    return true;
}

Tick
EventQueue::run()
{
    stopped = false;
    while (!stopped && fireNext(~Tick(0)))
        ;
    return _curTick;
}

Tick
EventQueue::runUntil(Tick limit)
{
    stopped = false;
    while (!stopped && fireNext(limit))
        ;
    return _curTick;
}

void
EventQueue::reset()
{
    heap.clear();
    fifo.clear();
    fifoHead = 0;
    fifoDead = 0;
    slots.clear();
    freeHead = badIndex;
    slotsInUse = 0;
    pendingCount = 0;
    daemonCount = 0;
    _curTick = 0;
    nextSeq = 0;
    _numFired = 0;
    stopped = false;
}

} // namespace specrt
