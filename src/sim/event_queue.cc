#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace specrt
{

EventQueue::EventQueue()
    : bucketHead(wheelSpan, badIndex), bucketTail(wheelSpan, badIndex)
{
}

EventQueue::~EventQueue()
{
    // Exact-cancel invariant: every live slot corresponds to exactly
    // one pending entry; nothing lingers in auxiliary state. (The old
    // lazy-deletion engine leaked its cancelled-id set here whenever
    // the queue died with pending events.)
    SPECRT_ASSERT(slotsInUse == pendingCount,
                  "event queue leaked auxiliary state: "
                  "%zu live slots vs %zu pending events",
                  slotsInUse, pendingCount);
    SPECRT_ASSERT(fifoDead <= fifo.size() - fifoHead,
                  "event queue FIFO lane corrupt: %zu dead of %zu",
                  fifoDead, fifo.size() - fifoHead);
}

uint32_t
EventQueue::allocSlot()
{
    uint32_t idx;
    if (freeHead != badIndex) {
        idx = freeHead;
        freeHead = slotAt(idx).nextFree;
    } else {
        if ((slotCount >> slotChunkShift) == slotChunks.size())
            slotChunks.emplace_back(new Slot[slotChunkLen]);
        idx = slotCount++;
    }
    ++slotsInUse;
    return idx;
}

void
EventQueue::freeSlot(uint32_t idx)
{
    Slot &s = slotAt(idx);
    s.cb.clear(); // no-op if fire() already cleared it
    s.loc = LocFree;
    ++s.gen; // stale ids naming this slot stop matching
    s.nextFree = freeHead;
    freeHead = idx;
    --slotsInUse;
}

uint32_t
EventQueue::liveSlotOf(EventId id) const
{
    if (id == invalidEventId)
        return badIndex;
    uint64_t hi = id >> 32;
    if (hi == 0 || hi > slotCount)
        return badIndex;
    auto idx = static_cast<uint32_t>(hi - 1);
    const Slot &s = slotAt(idx);
    if (s.loc == LocFree || s.gen != static_cast<uint32_t>(id))
        return badIndex;
    return idx;
}

void
EventQueue::insertEntry(Tick when, uint32_t slot, Slot &s)
{
    uint64_t seq = nextSeq++;

    if (when == _curTick) {
        // Fast lane: same-tick events (zero-delay protocol hand-offs)
        // append to a FIFO instead of churning the heap. FIFO entries
        // all carry when == curTick and ascending seq, so the lane is
        // already in fire order.
        s.loc = LocFifo;
        s.pos = static_cast<uint32_t>(fifo.size());
        fifo.push_back(Entry{when, seq, slot});
    } else if (when - _curTick < wheelSpan) {
        // Near future: O(1) append to the tick's bucket chain. Live
        // entries' ticks span less than wheelSpan, so bucket index
        // and tick are in bijection, and appends arrive in ascending
        // seq (scheduling order), keeping each chain fire-ordered.
        s.loc = LocWheel;
        uint32_t node = allocWheelNode();
        wpool[node].e = Entry{when, seq, slot};
        wpool[node].next = badIndex;
        auto b = static_cast<uint32_t>(when & wheelMask);
        if (bucketTail[b] == badIndex)
            bucketHead[b] = node;
        else
            wpool[bucketTail[b]].next = node;
        bucketTail[b] = node;
        s.pos = node;
        ++wheelCount;
        if (when < wheelNext)
            wheelNext = when;
    } else {
        s.loc = LocHeap;
        size_t i = heap.size();
        heap.push_back(Entry{when, seq, slot});
        s.pos = static_cast<uint32_t>(i);
        heapSiftUp(i);
    }
    ++pendingCount;
}

uint32_t
EventQueue::allocWheelNode()
{
    if (wheelFree != badIndex) {
        uint32_t n = wheelFree;
        wheelFree = wpool[n].next;
        return n;
    }
    wpool.emplace_back();
    return static_cast<uint32_t>(wpool.size() - 1);
}

void
EventQueue::freeWheelNode(uint32_t n)
{
    wpool[n].next = wheelFree;
    wheelFree = n;
}

void
EventQueue::popWheelHead(uint32_t b)
{
    uint32_t n = bucketHead[b];
    bucketHead[b] = wpool[n].next;
    if (bucketHead[b] == badIndex)
        bucketTail[b] = badIndex;
    freeWheelNode(n);
    --wheelCount;
}

void
EventQueue::wheelRescan()
{
    if (wheelCount == 0) {
        wheelNext = noWheelTick;
        return;
    }
    // Some bucket is occupied, and every node's tick is within
    // wheelSpan of here, so a forward scan of at most wheelSpan
    // buckets finds it. The scan distance equals the actual tick gap
    // to the next event -- short whenever the queue is busy.
    for (Tick t = wheelNext + 1;; ++t) {
        if (bucketHead[t & wheelMask] != badIndex) {
            wheelNext = t;
            return;
        }
        SPECRT_ASSERT(t - wheelNext < wheelSpan,
                      "wheel lost its %zu nodes", wheelCount);
    }
}

void
EventQueue::wheelAdvance()
{
    while (wheelNext != noWheelTick) {
        uint32_t b = wheelNext & wheelMask;
        uint32_t n = bucketHead[b];
        // Cancelled nodes die in place; reap them at the head.
        while (n != badIndex && wpool[n].e.slot == badIndex) {
            popWheelHead(b);
            n = bucketHead[b];
        }
        if (n != badIndex) {
            SPECRT_ASSERT(wpool[n].e.when == wheelNext,
                          "wheel bucket tick skew");
            return;
        }
        wheelRescan();
    }
}

void
EventQueue::deschedule(EventId id)
{
    uint32_t idx = liveSlotOf(id);
    if (idx == badIndex)
        return; // unknown or already fired: harmless no-op

    Slot &s = slotAt(idx);
    if (s.loc == LocHeap) {
        heapRemove(s.pos);
    } else if (s.loc == LocWheel) {
        // Wheel nodes die in place (O(1)); wheelAdvance reaps them.
        wpool[s.pos].e.slot = badIndex;
    } else {
        // FIFO entries die in place (O(1)); the fire loop skips them.
        // The count stays exact: the event is gone from numPending()
        // and its slot is free for reuse immediately.
        fifo[s.pos].slot = badIndex;
        ++fifoDead;
    }
    if (s.daemon)
        --daemonCount;
    freeSlot(idx); // destroys the callback
    --pendingCount;
}

void
EventQueue::heapSiftUp(size_t i)
{
    Entry e = heap[i];
    while (i > 0) {
        size_t parent = (i - 1) / 2;
        if (!before(e, heap[parent]))
            break;
        heap[i] = heap[parent];
        slotAt(heap[i].slot).pos = static_cast<uint32_t>(i);
        i = parent;
    }
    heap[i] = e;
    slotAt(e.slot).pos = static_cast<uint32_t>(i);
}

void
EventQueue::heapSiftDown(size_t i)
{
    size_t n = heap.size();
    Entry e = heap[i];
    while (true) {
        size_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && before(heap[child + 1], heap[child]))
            ++child;
        if (!before(heap[child], e))
            break;
        heap[i] = heap[child];
        slotAt(heap[i].slot).pos = static_cast<uint32_t>(i);
        i = child;
    }
    heap[i] = e;
    slotAt(e.slot).pos = static_cast<uint32_t>(i);
}

EventQueue::Entry
EventQueue::heapRemove(size_t i)
{
    Entry e = heap[i];
    size_t last = heap.size() - 1;
    if (i != last) {
        heap[i] = heap[last];
        slotAt(heap[i].slot).pos = static_cast<uint32_t>(i);
        heap.pop_back();
        if (i > 0 && before(heap[i], heap[(i - 1) / 2]))
            heapSiftUp(i);
        else
            heapSiftDown(i);
    } else {
        heap.pop_back();
    }
    return e;
}

void
EventQueue::fifoSkipDead()
{
    while (fifoHead < fifo.size() &&
           fifo[fifoHead].slot == badIndex) {
        ++fifoHead;
        --fifoDead;
    }
    if (fifoHead == fifo.size() && fifoHead > 0) {
        fifo.clear(); // keeps capacity: no allocation next round
        fifoHead = 0;
    }
}

void
EventQueue::fire(const Entry &e)
{
    // The callback runs in place: slots live in stable chunks, so
    // events the callback schedules may add chunks but never move
    // this slot, and the slot is only recycled (freeSlot) after the
    // callback returns. Marking the slot LocFree up front keeps the
    // old semantics that descheduling the firing event's own id from
    // inside its callback is a harmless no-op.
    Slot &s = slotAt(e.slot);
    EventKind kind = s.kind;
    if constexpr (profileEnabled)
        prof::Registry::instance().recordEvent(kind);
    if (controller)
        controller->onFire(
            {_curTick, kind, s.actor, s.daemon, e.seq, s.parent});
    if (s.daemon)
        --daemonCount;
    s.loc = LocFree;
    --pendingCount;
    ++_numFired;
    ++_numFiredTotal;
    ++fireDepth;
    uint64_t saved_parent = curParentSeq;
    curParentSeq = e.seq;
    s.cb();
    curParentSeq = saved_parent;
    --fireDepth;
    freeSlot(e.slot); // destroys the callback
    if (postFireHook)
        postFireHook(_curTick, kind);
}

bool
EventQueue::fireNext(Tick limit)
{
    if (controller)
        return fireNextControlled(limit);

    // Only daemon events left: the queue is drained. They stay
    // pending (and unfired) so time never advances past the last
    // piece of real work.
    if (pendingCount == daemonCount)
        return false;

    fifoSkipDead();
    wheelAdvance();
    bool haveFifo = fifoHead < fifo.size();
    bool haveWheel = wheelNext != noWheelTick;
    bool haveHeap = !heap.empty();
    if (!haveFifo && !haveWheel && !haveHeap)
        return false;

    // Global fire order is (when, seq) across all three lanes.
    const Entry *best = haveFifo ? &fifo[fifoHead] : nullptr;
    CandLane lane = CandLane::Fifo;
    if (haveWheel) {
        const Entry &w = wpool[bucketHead[wheelNext & wheelMask]].e;
        if (!best || before(w, *best)) {
            best = &w;
            lane = CandLane::Wheel;
        }
    }
    if (haveHeap && (!best || before(heap[0], *best))) {
        best = &heap[0];
        lane = CandLane::Heap;
    }
    if (best->when > limit)
        return false;

    if (lane == CandLane::Fifo) {
        // Batched same-tick drain. Once the FIFO lane wins the
        // comparison, no wheel or heap entry exists at curTick: such
        // an entry was scheduled on an earlier tick, so it carries a
        // smaller seq than every FIFO entry (all created this tick)
        // and would have won instead. Events fired here can only
        // append to the FIFO (same tick) or push future ticks into
        // the wheel/heap, so the whole contiguous run fires without
        // re-evaluating the lane comparison. The daemon check runs
        // per event: daemons can sit in the FIFO, and they must
        // never fire alone.
        do {
            Entry e = fifo[fifoHead];
            ++fifoHead;
            SPECRT_ASSERT(e.when == _curTick,
                          "FIFO lane event not at current tick");
            fire(e);
            if (stopped || pendingCount == daemonCount)
                break;
            fifoSkipDead();
        } while (fifoHead < fifo.size());
        return true;
    }

    if (lane == CandLane::Wheel) {
        Entry e = *best;
        popWheelHead(static_cast<uint32_t>(wheelNext & wheelMask));
        SPECRT_ASSERT(e.when >= _curTick, "event queue went backwards");
        _curTick = e.when;
        fire(e);
        return true;
    }

    Entry e = heapRemove(0);
    SPECRT_ASSERT(e.when >= _curTick, "event queue went backwards");
    // Time only advances on wheel/heap fires, and only with the FIFO
    // lane empty: a non-empty lane holds (curTick, seq) keys, which
    // win the comparison above against any later-tick candidate.
    _curTick = e.when;
    fire(e);
    return true;
}

bool
EventQueue::fireNextControlled(Tick limit)
{
    if (pendingCount == daemonCount)
        return false;

    fifoSkipDead();
    wheelAdvance();
    bool haveFifo = fifoHead < fifo.size();
    bool haveWheel = wheelNext != noWheelTick;
    bool haveHeap = !heap.empty();
    if (!haveFifo && !haveWheel && !haveHeap)
        return false;

    // The minimum pending tick. Live FIFO entries always carry
    // curTick, so with the lane non-empty the minimum is curTick and
    // any wheel/heap entries at curTick join the candidate set.
    Tick min_when = noWheelTick;
    if (haveFifo)
        min_when = fifo[fifoHead].when;
    if (haveWheel && wheelNext < min_when)
        min_when = wheelNext;
    if (haveHeap && heap[0].when < min_when)
        min_when = heap[0].when;
    if (min_when > limit)
        return false;

    // Gather every ready event at min_when from all lanes, then
    // order by seq: candidate 0 is exactly what the uncontrolled
    // path would fire.
    candScratch.clear();
    if (haveFifo) {
        for (size_t p = fifoHead; p < fifo.size(); ++p) {
            if (fifo[p].slot != badIndex)
                candScratch.push_back({fifo[p].seq,
                                       static_cast<uint32_t>(p),
                                       CandLane::Fifo});
        }
    }
    if (haveWheel && wheelNext == min_when) {
        for (uint32_t n = bucketHead[wheelNext & wheelMask];
             n != badIndex; n = wpool[n].next) {
            if (wpool[n].e.slot != badIndex)
                candScratch.push_back(
                    {wpool[n].e.seq, n, CandLane::Wheel});
        }
    }
    if (haveHeap) {
        for (size_t i = 0; i < heap.size(); ++i) {
            if (heap[i].when == min_when)
                candScratch.push_back({heap[i].seq,
                                       static_cast<uint32_t>(i),
                                       CandLane::Heap});
        }
    }
    SPECRT_ASSERT(!candScratch.empty(), "controlled fire lost the "
                  "ready set");
    std::sort(candScratch.begin(), candScratch.end(),
              [](const Cand &a, const Cand &b) { return a.seq < b.seq; });

    size_t choice = 0;
    if (candScratch.size() > 1) {
        choiceScratch.clear();
        for (const Cand &c : candScratch) {
            const Entry &e = c.lane == CandLane::Heap ? heap[c.idx]
                             : c.lane == CandLane::Wheel
                                 ? wpool[c.idx].e
                                 : fifo[c.idx];
            const Slot &s = slotAt(e.slot);
            choiceScratch.push_back(
                {e.when, s.kind, s.actor, s.daemon, e.seq, s.parent});
        }
        choice = controller->pick(choiceScratch.data(),
                                  choiceScratch.size());
        if (choice >= candScratch.size())
            choice = candScratch.size() - 1;
    }

    const Cand &c = candScratch[choice];
    Entry e;
    if (c.lane == CandLane::Heap) {
        e = heapRemove(c.idx);
        SPECRT_ASSERT(e.when >= _curTick, "event queue went backwards");
        // Advancing to e.when is safe: a live FIFO entry would have
        // forced min_when == curTick, making e.when == curTick too.
        _curTick = e.when;
    } else if (c.lane == CandLane::Wheel) {
        e = wpool[c.idx].e;
        SPECRT_ASSERT(e.when >= _curTick, "event queue went backwards");
        auto b = static_cast<uint32_t>(wheelNext & wheelMask);
        if (c.idx == bucketHead[b]) {
            popWheelHead(b);
        } else {
            // Out-of-order pick: retire the node in place, exactly
            // like a cancellation; wheelAdvance reaps it.
            wpool[c.idx].e.slot = badIndex;
        }
        _curTick = e.when;
    } else {
        e = fifo[c.idx];
        SPECRT_ASSERT(e.when == _curTick,
                      "FIFO lane event not at current tick");
        if (c.idx == fifoHead) {
            ++fifoHead;
        } else {
            // Out-of-order pick: retire the entry in place, exactly
            // like a cancellation; the skip loop reclaims it.
            fifo[c.idx].slot = badIndex;
            ++fifoDead;
        }
    }
    fire(e);
    return true;
}

Tick
EventQueue::run()
{
    stopped = false;
    while (!stopped && fireNext(~Tick(0)))
        ;
    return _curTick;
}

Tick
EventQueue::runUntil(Tick limit)
{
    stopped = false;
    while (!stopped && fireNext(limit))
        ;
    return _curTick;
}

void
EventQueue::reset()
{
    // Destroying the slot chunks while a callback executes out of one
    // would pull the stack out from under it; reset() is a between-
    // phases operation, never a callback's.
    SPECRT_ASSERT(fireDepth == 0,
                  "EventQueue::reset() called from inside a callback");
    heap.clear();
    fifo.clear();
    fifoHead = 0;
    fifoDead = 0;
    wpool.clear();
    wheelFree = badIndex;
    std::fill(bucketHead.begin(), bucketHead.end(), badIndex);
    std::fill(bucketTail.begin(), bucketTail.end(), badIndex);
    wheelCount = 0;
    wheelNext = noWheelTick;
    slotChunks.clear();
    slotCount = 0;
    freeHead = badIndex;
    slotsInUse = 0;
    pendingCount = 0;
    daemonCount = 0;
    _curTick = 0;
    // nextSeq deliberately survives: like the schedule controller, a
    // controlled run may span several reset legs, and EventChoice::seq
    // must stay unique per run for step identity (verify/explorer).
    // Ordering invariants only need monotonicity, which holds.
    _numFired = 0;
    stopped = false;
    curParentSeq = noEventSeq;
}

} // namespace specrt
