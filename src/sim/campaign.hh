/**
 * @file
 * Simulation-campaign runner: fan a matrix of independent
 * single-threaded simulator jobs (config x seed points of a torture
 * grid, figure sweep, or bench ablation) across host threads.
 *
 * Each job runs inside its own freshly constructed SimContext
 * (sim/sim_context.hh), activated on the worker thread for the job's
 * duration, so jobs share no mutable sim state: separate log sinks,
 * separate trace rings, separate RNG streams. The simulator itself
 * stays single-threaded; only *instances* run concurrently.
 *
 * Scheduling is work-stealing: jobs are dealt round-robin onto
 * per-worker deques up front, each worker pops its own deque from the
 * front and steals from the back of a victim's when dry. Jobs never
 * spawn jobs, so a worker may exit once every deque is empty.
 *
 * Determinism: a job's behavior depends only on (baseSeed, job id) --
 * jobSeed() derives its context seed -- never on which worker ran it
 * or in what order. Outcomes (and any per-job result shards the
 * caller keeps) are indexed by job id, so aggregation in id order is
 * byte-identical between a serial (jobs=1) and a parallel run, and a
 * single failed job can be re-run alone from its id.
 *
 * Failure isolation: with trapFatal (the default) each job's context
 * has throw-on-fatal set, and FatalError / std::exception escaping
 * the job is captured into its JobOutcome instead of killing the
 * campaign. gtest assertions must NOT be used inside jobs (they are
 * not thread-safe off the main thread); record errors and assert on
 * the outcomes afterwards.
 */

#ifndef SPECRT_SIM_CAMPAIGN_HH
#define SPECRT_SIM_CAMPAIGN_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace specrt
{

class SimContext;

namespace campaign
{

/**
 * Live aggregate figures a caller can contribute to the progress
 * snapshot (see Options::progressLive): simulated ticks completed so
 * far and the current hot-directory line from the PR-5 heatmap. The
 * callback runs on the publisher thread, so it must synchronize with
 * the jobs itself (bench::runJobs keeps both behind a mutex).
 */
struct ProgressLive
{
    uint64_t simTicks = 0;
    std::string hot;
};

/** How to run a campaign. */
struct Options
{
    /**
     * Worker threads. 0 = defaultJobs(); 1 = run every job inline on
     * the calling thread (still one fresh SimContext per job, so
     * results match a parallel run exactly).
     */
    unsigned jobs = 0;

    /** Base seed; job i's context is seeded with jobSeed(baseSeed, i). */
    uint64_t baseSeed = 0;

    /**
     * Set throw-on-fatal in each job's context and capture escaping
     * FatalError / std::exception into the job's outcome.
     */
    bool trapFatal = true;

    // --- live progress streaming --------------------------------------

    /**
     * When non-empty, a publisher thread periodically writes a JSON
     * status snapshot (per-job state tallies, throughput, ETA,
     * failures so far) to this path. Writes are atomic: the snapshot
     * lands in "<path>.tmp" and is renamed over the target, so a
     * tailer (scripts/specrt_top.py) never reads a torn file. The
     * final snapshot ("done": true) is written when the campaign
     * returns. Observability only: never affects job results.
     */
    std::string progressPath;

    /** Snapshot period for progressPath (clamped to >= 10). */
    unsigned progressIntervalMs = 500;

    /**
     * Optional aggregate sampler folded into each snapshot (runs on
     * the publisher thread; must be thread-safe).
     */
    std::function<ProgressLive()> progressLive;
};

/** What happened to one job. */
struct JobOutcome
{
    size_t id = 0;
    bool ok = false;
    /** Failure description when !ok ("" otherwise). */
    std::string error;
    /** Worker that ran the job (diagnostic only; never affects results). */
    unsigned worker = 0;
    /** The job context's seed (jobSeed(baseSeed, id)). */
    uint64_t seed = 0;
    /**
     * Hex fingerprint of the last MachineConfig the job ran ("" if
     * the job never reached a LoopExecutor). With the seed, a
     * failure line is directly replayable.
     */
    std::string configFingerprint;
};

/** True when every outcome is ok. */
bool allOk(const std::vector<JobOutcome> &outcomes);

/**
 * One line per failed outcome, each naming the job's seed and (when
 * known) config fingerprint so it is directly replayable:
 * "job 3 (seed 0x1a2b, config 00ffee...): <error>; job 7 ...".
 * "" when every job passed.
 */
std::string describeFailures(const std::vector<JobOutcome> &outcomes);

/**
 * Worker count used when Options::jobs is 0: the SPECRT_JOBS
 * environment variable if set to a positive integer, else
 * std::thread::hardware_concurrency() (minimum 1).
 */
unsigned defaultJobs();

/** The context seed of job @p id under @p base_seed. */
uint64_t jobSeed(uint64_t base_seed, size_t id);

/**
 * One job: runs with @p ctx current on the calling worker thread.
 * The same fn is called for every job; it dispatches on @p id (e.g.
 * indexes a config x seed matrix) and writes results into
 * caller-owned storage slot @p id.
 */
using JobFn = std::function<void(size_t id, SimContext &ctx)>;

/**
 * Run jobs 0..n-1, blocking until all finish. Outcomes are returned
 * in job-id order. Throws only on setup failure (thread creation);
 * job failures land in the outcomes (see Options::trapFatal).
 */
std::vector<JobOutcome> run(size_t n, const JobFn &fn,
                            const Options &opts = {});

} // namespace campaign
} // namespace specrt

#endif // SPECRT_SIM_CAMPAIGN_HH
