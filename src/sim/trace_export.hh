/**
 * @file
 * Exporters for the sim-time trace ring (sim/trace.hh):
 *
 *  - Chrome/Perfetto trace-event JSON: one process ("track") per
 *    node, iterations as B/E slices, messages as dur-1 slices tied
 *    together by s/f flow arrows, protocol state changes as instant
 *    events, aborts as global instants carrying the abort cause.
 *    Load the file in https://ui.perfetto.dev or chrome://tracing.
 *  - a compact text summary (per-op counts, drop accounting, and
 *    the abort records), for terminals and CI logs.
 *
 * Each exporter optionally folds in a metric timeline
 * (sim/timeline.hh): sampled series become Perfetto counter tracks
 * ("ph": "C") on a synthetic "metrics" process sharing the trace's
 * tick timebase, so counters and protocol events line up in one UI;
 * the text summary gains the hot-element / hot-home-node contention
 * report next to the abort records.
 *
 * Timestamps are raw sim ticks; the viewer renders them as
 * microseconds, which only changes the axis label.
 */

#ifndef SPECRT_SIM_TRACE_EXPORT_HH
#define SPECRT_SIM_TRACE_EXPORT_HH

#include <string>

namespace specrt
{

namespace timeline
{
class Timeline;
}

namespace trace
{

class TraceBuffer;

/**
 * The whole ring as a Chrome trace-event JSON document; @p tl (may
 * be null) adds its series as counter tracks on the same timebase.
 */
std::string chromeTraceJson(const TraceBuffer &buf,
                            const timeline::Timeline *tl = nullptr);

/** Write chromeTraceJson(@p buf, @p tl) to @p path. @return success. */
bool exportChromeTraceFile(const TraceBuffer &buf,
                           const std::string &path,
                           const timeline::Timeline *tl = nullptr);

/** Compact human-readable summary of the ring's contents. */
std::string textSummary(const TraceBuffer &buf,
                        const timeline::Timeline *tl = nullptr);

} // namespace trace
} // namespace specrt

#endif // SPECRT_SIM_TRACE_EXPORT_HH
