#include "sim/campaign.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "obs/event_log.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/sim_context.hh"

namespace specrt
{
namespace campaign
{

namespace
{

/**
 * A worker's deque of pending job ids. Dealt round-robin before the
 * workers start; the owner pops from the front, thieves steal from
 * the back (classic Chase-Lev orientation, with a plain mutex -- job
 * granularity is whole simulations, so contention is negligible).
 */
struct WorkDeque
{
    std::mutex mtx;
    std::deque<size_t> jobs;

    bool
    popFront(size_t &id)
    {
        std::lock_guard<std::mutex> guard(mtx);
        if (jobs.empty())
            return false;
        id = jobs.front();
        jobs.pop_front();
        return true;
    }

    bool
    stealBack(size_t &id)
    {
        std::lock_guard<std::mutex> guard(mtx);
        if (jobs.empty())
            return false;
        id = jobs.back();
        jobs.pop_back();
        return true;
    }
};

/** Per-job state byte the progress publisher samples. */
enum JobState : uint8_t
{
    JobPending = 0,
    JobRunning = 1,
    JobOk = 2,
    JobFailed = 3,
};

void
runOneJob(size_t id, unsigned worker, const JobFn &fn,
          const Options &opts, JobOutcome &out,
          std::atomic<uint8_t> *state)
{
    out.id = id;
    out.worker = worker;
    out.seed = jobSeed(opts.baseSeed, id);
    if (state)
        state->store(JobRunning, std::memory_order_relaxed);
    SimContext ctx(out.seed);
    {
        ScopedSimContext active(ctx);
        if (opts.trapFatal)
            ctx.logThrowOnFatal = true;
        if (!opts.trapFatal) {
            fn(id, ctx);
            out.ok = true;
        } else {
            try {
                fn(id, ctx);
                out.ok = true;
            } catch (const FatalError &e) {
                out.error = e.message.empty()
                                ? std::string("fatal error")
                                : e.message;
            } catch (const std::exception &e) {
                out.error = e.what();
            } catch (...) {
                out.error = "unknown exception";
            }
        }
        // Even a failed job reports the config it ran (set by
        // LoopExecutor::run): the describeFailures line must be
        // replayable.
        out.configFingerprint = ctx.configFingerprint;
    }
    if (state) {
        state->store(out.ok ? JobOk : JobFailed,
                     std::memory_order_relaxed);
    }
}

/**
 * Publishes the campaign's status snapshot to Options::progressPath
 * every progressIntervalMs until stopped, then once more with
 * "done": true. Snapshots are written to "<path>.tmp" and renamed
 * into place so tailers never observe a torn file.
 */
class ProgressPublisher
{
  public:
    ProgressPublisher(const Options &opts, size_t n,
                      const std::atomic<uint8_t> *states)
        : opts(opts), n(n), states(states),
          start(std::chrono::steady_clock::now())
    {
        if (opts.progressPath.empty())
            return;
        publisher = std::thread([this] { loop(); });
    }

    ~ProgressPublisher()
    {
        if (!publisher.joinable())
            return;
        {
            std::lock_guard<std::mutex> guard(mtx);
            stopping = true;
        }
        cv.notify_all();
        publisher.join();
        publish(true);
    }

    ProgressPublisher(const ProgressPublisher &) = delete;
    ProgressPublisher &operator=(const ProgressPublisher &) = delete;

  private:
    void
    loop()
    {
        auto period = std::chrono::milliseconds(
            opts.progressIntervalMs < 10 ? 10
                                         : opts.progressIntervalMs);
        std::unique_lock<std::mutex> lock(mtx);
        while (!stopping) {
            cv.wait_for(lock, period);
            if (stopping)
                return;
            lock.unlock();
            publish(false);
            lock.lock();
        }
    }

    void
    publish(bool done)
    {
        size_t running = 0, ok = 0, failed = 0;
        std::string runningIds, failedIds;
        size_t runningListed = 0, failedListed = 0;
        constexpr size_t maxListed = 32;
        for (size_t i = 0; i < n; ++i) {
            uint8_t s = states[i].load(std::memory_order_relaxed);
            if (s == JobRunning) {
                ++running;
                if (runningListed++ < maxListed) {
                    if (!runningIds.empty())
                        runningIds += ",";
                    runningIds += std::to_string(i);
                }
            } else if (s == JobOk) {
                ++ok;
            } else if (s == JobFailed) {
                ++failed;
                if (failedListed++ < maxListed) {
                    if (!failedIds.empty())
                        failedIds += ",";
                    failedIds += std::to_string(i);
                }
            }
        }
        size_t finished = ok + failed;
        double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        double rate = elapsed > 0
                          ? static_cast<double>(finished) / elapsed
                          : 0.0;
        double eta = rate > 0
                         ? static_cast<double>(n - finished) / rate
                         : -1.0;

        ProgressLive live;
        if (opts.progressLive)
            live = opts.progressLive();
        double tps = elapsed > 0
                         ? static_cast<double>(live.simTicks) / elapsed
                         : 0.0;

        std::ostringstream os;
        os << "{\n"
           << "  \"schema\": 1,\n"
           << "  \"done\": " << (done ? "true" : "false") << ",\n"
           << "  \"total\": " << n << ",\n"
           << "  \"pending\": " << (n - running - finished) << ",\n"
           << "  \"running\": " << running << ",\n"
           << "  \"ok\": " << ok << ",\n"
           << "  \"failed\": " << failed << ",\n"
           << "  \"elapsed_s\": " << obs::jsonNumber(elapsed) << ",\n"
           << "  \"jobs_per_sec\": " << obs::jsonNumber(rate) << ",\n"
           << "  \"eta_s\": " << obs::jsonNumber(eta) << ",\n"
           << "  \"sim_ticks\": " << live.simTicks << ",\n"
           << "  \"ticks_per_sec\": " << obs::jsonNumber(tps) << ",\n"
           << "  \"hot\": \"" << obs::jsonEscape(live.hot) << "\",\n"
           << "  \"running_jobs\": [" << runningIds << "],\n"
           << "  \"failed_jobs\": [" << failedIds << "]\n"
           << "}\n";

        std::string tmp = opts.progressPath + ".tmp";
        std::FILE *f = std::fopen(tmp.c_str(), "w");
        if (!f)
            return;
        std::string body = os.str();
        std::fwrite(body.data(), 1, body.size(), f);
        std::fclose(f);
        std::rename(tmp.c_str(), opts.progressPath.c_str());
    }

    const Options &opts;
    size_t n;
    const std::atomic<uint8_t> *states;
    std::chrono::steady_clock::time_point start;
    std::mutex mtx;
    std::condition_variable cv;
    bool stopping = false;
    std::thread publisher;
};

void
workerLoop(unsigned me, std::vector<WorkDeque> &deques, const JobFn &fn,
           const Options &opts, std::vector<JobOutcome> &outcomes,
           std::atomic<uint8_t> *states)
{
    const unsigned nw = static_cast<unsigned>(deques.size());
    size_t id;
    for (;;) {
        if (deques[me].popFront(id)) {
            runOneJob(id, me, fn, opts, outcomes[id], &states[id]);
            continue;
        }
        // Own deque dry: steal. Jobs never spawn jobs, so once every
        // deque is empty no new work can appear and we may exit.
        bool stole = false;
        for (unsigned k = 1; k < nw && !stole; ++k)
            stole = deques[(me + k) % nw].stealBack(id);
        if (!stole)
            return;
        runOneJob(id, me, fn, opts, outcomes[id], &states[id]);
    }
}

} // namespace

bool
allOk(const std::vector<JobOutcome> &outcomes)
{
    for (const JobOutcome &o : outcomes) {
        if (!o.ok)
            return false;
    }
    return true;
}

std::string
describeFailures(const std::vector<JobOutcome> &outcomes)
{
    std::ostringstream os;
    bool first = true;
    for (const JobOutcome &o : outcomes) {
        if (o.ok)
            continue;
        if (!first)
            os << "; ";
        first = false;
        os << "job " << o.id << " (seed 0x" << std::hex << o.seed
           << std::dec;
        if (!o.configFingerprint.empty())
            os << ", config " << o.configFingerprint;
        os << "): " << o.error;
    }
    return os.str();
}

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("SPECRT_JOBS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
        warn("ignoring SPECRT_JOBS='%s' (want a positive integer)", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

uint64_t
jobSeed(uint64_t base_seed, size_t id)
{
    return deriveSeed(base_seed, "job:" + std::to_string(id));
}

std::vector<JobOutcome>
run(size_t n, const JobFn &fn, const Options &opts)
{
    std::vector<JobOutcome> outcomes(n);
    if (n == 0)
        return outcomes;

    unsigned jobs = opts.jobs ? opts.jobs : defaultJobs();
    if (jobs > n)
        jobs = static_cast<unsigned>(n);

    // Value-initialized (JobPending) per-job state bytes, shared by
    // the workers and the progress publisher.
    std::unique_ptr<std::atomic<uint8_t>[]> states(
        new std::atomic<uint8_t>[n]());
    ProgressPublisher progress(opts, n, states.get());

    if (jobs == 1) {
        // Inline, but through the same per-job context machinery as
        // the parallel path so results are identical.
        for (size_t id = 0; id < n; ++id)
            runOneJob(id, 0, fn, opts, outcomes[id], &states[id]);
        return outcomes;
    }

    std::vector<WorkDeque> deques(jobs);
    for (size_t id = 0; id < n; ++id)
        deques[id % jobs].jobs.push_back(id);

    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (unsigned w = 0; w < jobs; ++w) {
        workers.emplace_back([&, w] {
            workerLoop(w, deques, fn, opts, outcomes, states.get());
        });
    }
    for (std::thread &t : workers)
        t.join();
    return outcomes;
}

} // namespace campaign
} // namespace specrt
