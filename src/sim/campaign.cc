#include "sim/campaign.hh"

#include <cstdlib>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/sim_context.hh"

namespace specrt
{
namespace campaign
{

namespace
{

/**
 * A worker's deque of pending job ids. Dealt round-robin before the
 * workers start; the owner pops from the front, thieves steal from
 * the back (classic Chase-Lev orientation, with a plain mutex -- job
 * granularity is whole simulations, so contention is negligible).
 */
struct WorkDeque
{
    std::mutex mtx;
    std::deque<size_t> jobs;

    bool
    popFront(size_t &id)
    {
        std::lock_guard<std::mutex> guard(mtx);
        if (jobs.empty())
            return false;
        id = jobs.front();
        jobs.pop_front();
        return true;
    }

    bool
    stealBack(size_t &id)
    {
        std::lock_guard<std::mutex> guard(mtx);
        if (jobs.empty())
            return false;
        id = jobs.back();
        jobs.pop_back();
        return true;
    }
};

void
runOneJob(size_t id, unsigned worker, const JobFn &fn,
          const Options &opts, JobOutcome &out)
{
    out.id = id;
    out.worker = worker;
    SimContext ctx(jobSeed(opts.baseSeed, id));
    ScopedSimContext active(ctx);
    if (opts.trapFatal)
        ctx.logThrowOnFatal = true;
    if (!opts.trapFatal) {
        fn(id, ctx);
        out.ok = true;
        return;
    }
    try {
        fn(id, ctx);
        out.ok = true;
    } catch (const FatalError &e) {
        out.error = e.message.empty() ? std::string("fatal error")
                                      : e.message;
    } catch (const std::exception &e) {
        out.error = e.what();
    } catch (...) {
        out.error = "unknown exception";
    }
}

void
workerLoop(unsigned me, std::vector<WorkDeque> &deques, const JobFn &fn,
           const Options &opts, std::vector<JobOutcome> &outcomes)
{
    const unsigned nw = static_cast<unsigned>(deques.size());
    size_t id;
    for (;;) {
        if (deques[me].popFront(id)) {
            runOneJob(id, me, fn, opts, outcomes[id]);
            continue;
        }
        // Own deque dry: steal. Jobs never spawn jobs, so once every
        // deque is empty no new work can appear and we may exit.
        bool stole = false;
        for (unsigned k = 1; k < nw && !stole; ++k)
            stole = deques[(me + k) % nw].stealBack(id);
        if (!stole)
            return;
        runOneJob(id, me, fn, opts, outcomes[id]);
    }
}

} // namespace

bool
allOk(const std::vector<JobOutcome> &outcomes)
{
    for (const JobOutcome &o : outcomes) {
        if (!o.ok)
            return false;
    }
    return true;
}

std::string
describeFailures(const std::vector<JobOutcome> &outcomes)
{
    std::ostringstream os;
    bool first = true;
    for (const JobOutcome &o : outcomes) {
        if (o.ok)
            continue;
        if (!first)
            os << "; ";
        first = false;
        os << "job " << o.id << ": " << o.error;
    }
    return os.str();
}

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("SPECRT_JOBS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
        warn("ignoring SPECRT_JOBS='%s' (want a positive integer)", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

uint64_t
jobSeed(uint64_t base_seed, size_t id)
{
    return deriveSeed(base_seed, "job:" + std::to_string(id));
}

std::vector<JobOutcome>
run(size_t n, const JobFn &fn, const Options &opts)
{
    std::vector<JobOutcome> outcomes(n);
    if (n == 0)
        return outcomes;

    unsigned jobs = opts.jobs ? opts.jobs : defaultJobs();
    if (jobs > n)
        jobs = static_cast<unsigned>(n);

    if (jobs == 1) {
        // Inline, but through the same per-job context machinery as
        // the parallel path so results are identical.
        for (size_t id = 0; id < n; ++id)
            runOneJob(id, 0, fn, opts, outcomes[id]);
        return outcomes;
    }

    std::vector<WorkDeque> deques(jobs);
    for (size_t id = 0; id < n; ++id)
        deques[id % jobs].jobs.push_back(id);

    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (unsigned w = 0; w < jobs; ++w) {
        workers.emplace_back([&, w] {
            workerLoop(w, deques, fn, opts, outcomes);
        });
    }
    for (std::thread &t : workers)
        t.join();
    return outcomes;
}

} // namespace campaign
} // namespace specrt
