#include "sim/sim_context.hh"

#include <cstdio>
#include <mutex>

#include "sim/stall.hh"
#include "sim/trace_export.hh"

namespace specrt
{

namespace
{

/**
 * The active context of this host thread. Null until current() is
 * first called or a ScopedSimContext activates an instance; lazily
 * points at the thread's own default context otherwise.
 */
thread_local SimContext *tlsCurrent = nullptr;

SimContext &
threadDefault()
{
    static thread_local SimContext ctx;
    return ctx;
}

} // namespace

SimContext::~SimContext()
{
    // Hand the arena back to the recycle pool first: slabs and
    // freelists stay warm for the next campaign job on any worker.
    Arena::recycle(std::move(arena));

    bool wantTrace = traceExportOnDestroy && !traceOutPath.empty() &&
                     traceBuf.recorded() != 0;
    bool wantTimeline = timelineExportOnDestroy &&
                        !timelineOutPath.empty() &&
                        timelineTl.numSamples() != 0;
    bool wantCritpath = critpathExportOnDestroy &&
                        !critpathOutPath.empty() &&
                        critpathRec.hasData();
    bool wantEvents = eventsExportOnDestroy &&
                      !eventsOutPath.empty() &&
                      eventsLog.recorded() != 0;
    if (!wantTrace && !wantTimeline && !wantCritpath && !wantEvents)
        return;
    // One exporter at a time: several env-traced contexts may die
    // concurrently (campaign jobs), and the files must never hold an
    // interleaving of two exports. The mutex has static storage, so
    // it outlives every thread-local context, including the main
    // thread's default one.
    static std::mutex exportMutex;
    std::lock_guard<std::mutex> lock(exportMutex);
    if (wantTrace) {
        // An env-traced context also folds its timeline counters
        // into the trace JSON, so one file shows both.
        const timeline::Timeline *tl =
            timelineTl.numSamples() ? &timelineTl : nullptr;
        if (trace::exportChromeTraceFile(traceBuf, traceOutPath,
                                         tl)) {
            std::fprintf(stderr, "[trace] wrote %zu records to %s\n",
                         traceBuf.size(), traceOutPath.c_str());
        } else {
            std::fprintf(stderr, "[trace] failed to write %s\n",
                         traceOutPath.c_str());
        }
    }
    if (wantTimeline) {
        std::FILE *f = std::fopen(timelineOutPath.c_str(), "w");
        if (f) {
            std::string csv = timelineTl.csv();
            std::fwrite(csv.data(), 1, csv.size(), f);
            std::fclose(f);
            std::fprintf(stderr,
                         "[timeline] wrote %zu samples to %s\n",
                         timelineTl.numSamples(),
                         timelineOutPath.c_str());
        } else {
            std::fprintf(stderr, "[timeline] failed to write %s\n",
                         timelineOutPath.c_str());
        }
    }
    if (wantCritpath) {
        std::FILE *f = std::fopen(critpathOutPath.c_str(), "w");
        if (f) {
            std::string json = critpathRec.perfettoJson();
            std::fwrite(json.data(), 1, json.size(), f);
            std::fclose(f);
            std::fprintf(stderr,
                         "[critpath] wrote %llu txn records to %s\n",
                         static_cast<unsigned long long>(
                             critpathRec.numTxns()),
                         critpathOutPath.c_str());
        } else {
            std::fprintf(stderr, "[critpath] failed to write %s\n",
                         critpathOutPath.c_str());
        }
    }
    if (wantEvents) {
        std::FILE *f = std::fopen(eventsOutPath.c_str(), "w");
        if (f) {
            std::string lines = eventsLog.jsonl();
            std::fwrite(lines.data(), 1, lines.size(), f);
            std::fclose(f);
            std::fprintf(stderr,
                         "[events] wrote %zu event lines to %s\n",
                         eventsLog.size(), eventsOutPath.c_str());
        } else {
            std::fprintf(stderr, "[events] failed to write %s\n",
                         eventsOutPath.c_str());
        }
    }
}

SimContext &
SimContext::current()
{
    if (!tlsCurrent)
        tlsCurrent = &threadDefault();
    return *tlsCurrent;
}

Arena &
SimContext::msgArena()
{
    if (!arena)
        arena = Arena::acquire();
    return *arena;
}

Rng &
SimContext::rng(const std::string &name)
{
    auto it = rngs.find(name);
    if (it == rngs.end()) {
        it = rngs.emplace(name, Rng(deriveSeed(baseSeed, name)))
                 .first;
    }
    return it->second;
}

void
SimContext::reseed(uint64_t seed)
{
    baseSeed = seed;
    for (auto &[name, stream] : rngs)
        stream.reseed(deriveSeed(baseSeed, name));
}

ScopedSimContext::ScopedSimContext(SimContext &ctx) : prev(tlsCurrent)
{
    tlsCurrent = &ctx;
    trace::refreshEnabled();
    timeline::refreshEnabled();
    critpath::refreshEnabled();
    stall::refreshEnabled();
    obs::refreshEnabled();
}

ScopedSimContext::~ScopedSimContext()
{
    tlsCurrent = prev;
    trace::refreshEnabled();
    timeline::refreshEnabled();
    critpath::refreshEnabled();
    stall::refreshEnabled();
    obs::refreshEnabled();
}

} // namespace specrt
