#include "sim/timeline.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/sim_context.hh"

namespace specrt
{
namespace timeline
{

thread_local bool tlsTimelineOn = false;

Timeline &
current()
{
    return SimContext::current().timelineData();
}

void
refreshEnabled()
{
    tlsTimelineOn = SimContext::current().timelineData().isOn();
}

// --- Timeline ---------------------------------------------------------

void
Timeline::enable(Tick interval)
{
    if (interval == 0)
        interval = defaultIntervalTicks;
    intervalTicks = interval;
    on = true;
    refreshEnabled();
}

void
Timeline::disable()
{
    on = false;
    refreshEnabled();
}

size_t
Timeline::seriesIndexOf(const std::string &name)
{
    auto it = seriesIndex.find(name);
    if (it != seriesIndex.end())
        return it->second;
    size_t idx = series_.size();
    series_.push_back(Series{name, {}});
    // Zero-backfill so the matrix stays rectangular: a series first
    // seen at row k reads 0 for rows 0..k-1.
    series_[idx].values.assign(ticks_.size(), 0.0);
    seriesIndex.emplace(name, idx);
    return idx;
}

void
Timeline::sample(Tick tick, uint32_t run,
                 const std::vector<std::pair<std::string, double>>
                     &values)
{
    ticks_.push_back(tick);
    runs_.push_back(run);
    // Default every known series to 0 for this row; the provided
    // values then overwrite their columns.
    for (Series &s : series_)
        s.values.push_back(0.0);
    size_t row = ticks_.size() - 1;
    for (const auto &[name, v] : values) {
        size_t idx = seriesIndexOf(name);
        if (series_[idx].values.size() <= row)
            series_[idx].values.resize(row + 1, 0.0);
        series_[idx].values[row] = v;
    }
    // Built-in series: §3.2/§3.3 spec-state transitions since the
    // previous sample. Always emitted, so even a run with no
    // registered groups or gauges produces a non-degenerate matrix.
    size_t sidx = seriesIndexOf("spec.transitions");
    if (series_[sidx].values.size() <= row)
        series_[sidx].values.resize(row + 1, 0.0);
    series_[sidx].values[row] =
        static_cast<double>(pendingSpecTransitions);
    pendingSpecTransitions = 0;
}

namespace
{

inline std::pair<NodeId, Addr>
heatKey(NodeId home, Addr elem)
{
    return {home, elem >> Timeline::bucketShift};
}

} // namespace

void
Timeline::noteDirAccess(NodeId home, Addr elem)
{
    ++heat[heatKey(home, elem)].accesses;
}

void
Timeline::noteDirQueued(NodeId home, Addr elem)
{
    ++heat[heatKey(home, elem)].queued;
}

void
Timeline::noteDirConflict(NodeId home, Addr elem)
{
    ++heat[heatKey(home, elem)].conflicts;
}

void
Timeline::merge(const Timeline &shard)
{
    size_t oldRows = ticks_.size();
    uint32_t runOffset = nextRun;
    ticks_.insert(ticks_.end(), shard.ticks_.begin(),
                  shard.ticks_.end());
    for (uint32_t r : shard.runs_)
        runs_.push_back(r + runOffset);
    nextRun += shard.nextRun;
    // Extend our series over the shard's rows, then fill the shard's
    // columns (creating any we have not seen; both directions are
    // zero-backfilled).
    for (Series &s : series_)
        s.values.resize(ticks_.size(), 0.0);
    for (const Series &ss : shard.series_) {
        size_t idx = seriesIndexOf(ss.name);
        series_[idx].values.resize(ticks_.size(), 0.0);
        std::copy(ss.values.begin(), ss.values.end(),
                  series_[idx].values.begin() + oldRows);
    }
    for (const auto &[key, cell] : shard.heat) {
        HeatCell &dst = heat[key];
        dst.accesses += cell.accesses;
        dst.queued += cell.queued;
        dst.conflicts += cell.conflicts;
    }
    pendingSpecTransitions += shard.pendingSpecTransitions;
}

namespace
{

/**
 * Deterministic shortest-exact double formatting: counters and
 * gauges are almost always integral, so print those without an
 * exponent or trailing zeros; everything else gets max_digits10.
 */
void
putValue(std::ostream &os, double v)
{
    double ipart;
    if (std::modf(v, &ipart) == 0.0 && v >= -9.0e15 && v <= 9.0e15) {
        os << static_cast<int64_t>(v);
    } else {
        std::ostringstream tmp;
        tmp << std::setprecision(17) << v;
        os << tmp.str();
    }
}

} // namespace

std::string
Timeline::csv() const
{
    std::ostringstream os;
    os << "tick,run";
    for (const Series &s : series_)
        os << ',' << s.name;
    os << '\n';
    for (size_t row = 0; row < ticks_.size(); ++row) {
        os << ticks_[row] << ',' << runs_[row];
        for (const Series &s : series_) {
            os << ',';
            putValue(os, s.values[row]);
        }
        os << '\n';
    }
    // Heatmap footer: comment lines so a plain CSV reader sees only
    // the matrix, in deterministic (home, bucket) order.
    for (const auto &[key, cell] : heat) {
        os << "# heat home=" << key.first << " bucket=0x" << std::hex
           << key.second << std::dec
           << " accesses=" << cell.accesses
           << " queued=" << cell.queued
           << " conflicts=" << cell.conflicts << '\n';
    }
    return os.str();
}

namespace
{

/** Contention order: conflicts, then queueing, then raw traffic. */
bool
hotter(const HeatCell &a, const HeatCell &b)
{
    if (a.conflicts != b.conflicts)
        return a.conflicts > b.conflicts;
    if (a.queued != b.queued)
        return a.queued > b.queued;
    return a.accesses > b.accesses;
}

void
putCell(std::ostream &os, const HeatCell &c)
{
    os << "conflicts=" << c.conflicts << " queued=" << c.queued
       << " accesses=" << c.accesses;
}

} // namespace

std::string
Timeline::hotSummary(size_t topK) const
{
    if (heat.empty())
        return std::string();

    std::map<NodeId, HeatCell> byNode;
    for (const auto &[key, cell] : heat) {
        HeatCell &dst = byNode[key.first];
        dst.accesses += cell.accesses;
        dst.queued += cell.queued;
        dst.conflicts += cell.conflicts;
    }

    // Stable hot order: contention desc, key asc as the tie-break
    // (std::map iteration is key-ascending, stable_sort keeps it).
    std::vector<std::pair<NodeId, HeatCell>> nodes(byNode.begin(),
                                                   byNode.end());
    std::stable_sort(nodes.begin(), nodes.end(),
                     [](const auto &a, const auto &b) {
                         return hotter(a.second, b.second);
                     });
    std::vector<std::pair<std::pair<NodeId, Addr>, HeatCell>> cells(
        heat.begin(), heat.end());
    std::stable_sort(cells.begin(), cells.end(),
                     [](const auto &a, const auto &b) {
                         return hotter(a.second, b.second);
                     });

    std::ostringstream os;
    os << "directory contention summary:\n  hot home nodes:\n";
    for (size_t i = 0; i < nodes.size() && i < topK; ++i) {
        os << "    node " << nodes[i].first << ": ";
        putCell(os, nodes[i].second);
        os << '\n';
    }
    os << "  hot elements (" << (1u << bucketShift)
       << "-word buckets):\n";
    for (size_t i = 0; i < cells.size() && i < topK; ++i) {
        Addr lo = cells[i].first.second << bucketShift;
        Addr hi = lo + (Addr(1) << bucketShift) - 1;
        os << "    node " << cells[i].first.first << " elems 0x"
           << std::hex << lo << "-0x" << hi << std::dec << ": ";
        putCell(os, cells[i].second);
        os << '\n';
    }
    return os.str();
}

// --- RunSampler -------------------------------------------------------

RunSampler::RunSampler(EventQueue &eq)
{
    if (!enabled())
        return;
    st = std::make_shared<State>();
    st->eq = &eq;
    st->tl = &current();
    st->runId = st->tl->beginRun();
    st->interval = st->tl->interval();
}

void
RunSampler::addGauge(std::string name, std::function<double()> fn)
{
    if (st)
        st->gauges.emplace_back(std::move(name), std::move(fn));
}

void
RunSampler::addStatDelta(const StatGroup &group)
{
    if (!st)
        return;
    State::DeltaGroup dg;
    dg.group = &group;
    StatSnapshot snap;
    group.snapshot(snap);
    for (const auto &[name, v] : snap)
        dg.prev[name] = v;
    st->deltas.push_back(std::move(dg));
}

void
RunSampler::takeSample(State &s)
{
    std::vector<std::pair<std::string, double>> vals;
    vals.reserve(s.gauges.size());
    for (const auto &[name, fn] : s.gauges)
        vals.emplace_back(name, fn());
    for (State::DeltaGroup &dg : s.deltas) {
        StatSnapshot snap;
        dg.group->snapshot(snap);
        // Match by name: Distribution snapshots grow per-bucket keys
        // as buckets fill, so positions are not stable across
        // samples. A value that shrank means the stat was reset
        // mid-run; restart the delta from the new absolute value
        // (the counter-reset rule) instead of going negative.
        for (const auto &[name, v] : snap) {
            auto it = dg.prev.find(name);
            double old = it != dg.prev.end() ? it->second : 0.0;
            vals.emplace_back("delta." + name,
                              v >= old ? v - old : v);
        }
        dg.prev.clear();
        for (const auto &[name, v] : snap)
            dg.prev[name] = v;
    }
    s.tl->sample(s.eq->curTick(), s.runId, vals);
}

void
RunSampler::armLocked(const std::shared_ptr<State> &s)
{
    // use_count() > 1 means a scheduled callback still holds the
    // token: already armed. (The count is exact here -- samplers and
    // their queues live on one thread.)
    if (s->pending && s->pending.use_count() > 1)
        return;
    s->pending = std::make_shared<char>();
    std::weak_ptr<State> w(s);
    std::shared_ptr<char> tok = s->pending;
    // Daemon events fire on the sampling grid while real work is
    // pending, but never extend a drain past it: the queue returns
    // from run() with the event still pending, and curTick stays at
    // the last modeled event, so sampling cannot perturb measured
    // phase durations.
    s->eq->scheduleDaemonIn(
        s->interval,
        [w, tok]() {
            std::shared_ptr<State> sp = w.lock();
            // The sampler finished, or the token was replaced
            // (machine reset re-armed through a fresh event): stale
            // callback, do nothing.
            if (!sp || sp->pending != tok)
                return;
            sp->pending.reset();
            takeSample(*sp);
            armLocked(sp);
        },
        EventKind::Generic);
}

void
RunSampler::arm()
{
    if (st)
        armLocked(st);
}

void
RunSampler::finish()
{
    if (!st)
        return;
    // Final row: runs shorter than one interval still record their
    // end state. In-flight events keep only the (now stale) token
    // and a dead weak_ptr, so they no-op if the queue outlives us.
    takeSample(*st);
    st.reset();
}

// --- config / env wiring ----------------------------------------------

void
applyConfig(const TimelineConfig &tc)
{
    if (!tc.enabled)
        return;
    SimContext &ctx = SimContext::current();
    ctx.timelineData().enable(tc.intervalTicks
                                  ? tc.intervalTicks
                                  : Timeline::defaultIntervalTicks);
    if (!tc.outPath.empty())
        ctx.timelineOutPath = tc.outPath;
}

namespace
{

/** The environment, parsed once per process (thread-safe). */
const TimelineConfig &
envTimelineConfig()
{
    static const TimelineConfig tc = TimelineConfig::fromEnv();
    return tc;
}

} // namespace

bool
maybeEnableFromEnv()
{
    SimContext &ctx = SimContext::current();
    if (!ctx.timelineEnvChecked) {
        ctx.timelineEnvChecked = true;
        const TimelineConfig &tc = envTimelineConfig();
        if (tc.enabled) {
            applyConfig(tc);
            // Like SPECRT_TRACE: the CSV lands when the context
            // dies, so env-sampled runs leave the file behind
            // without the code under test knowing.
            if (!ctx.timelineOutPath.empty())
                ctx.timelineExportOnDestroy = true;
        }
    }
    return enabled();
}

} // namespace timeline
} // namespace specrt
