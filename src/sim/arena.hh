/**
 * @file
 * A size-class freelist arena for hot-path protocol objects.
 *
 * The network schedules one delivery event per message, and each
 * event must own a copy of the message until it fires. Allocating
 * those copies from the general heap costs a malloc/free pair per
 * delivery -- the dominant allocation source on the protocol hot
 * path. The arena replaces that with a freelist pop/push: blocks are
 * carved from large slabs on first use and recycled forever after,
 * so steady-state message traffic allocates nothing.
 *
 * Blocks come in power-of-two size classes (64..4096 bytes); larger
 * requests fall through to the general heap (counted, never expected
 * on the hot path). The arena is single-threaded, like everything
 * else inside one SimContext.
 *
 * Lifecycle: each SimContext owns one arena, acquired from a small
 * process-wide recycle pool (Arena::acquire) and returned to it when
 * the context dies with no blocks outstanding (Arena::recycle).
 * Recycling keeps the slabs and freelists warm across campaign jobs;
 * reset() re-zeroes every *published* counter so a recycled arena's
 * telemetry never bleeds one job's numbers into the next. Warmth
 * itself (slab count, carved-vs-reused split) is deliberately NOT
 * part of the published stats: it depends on which jobs ran earlier
 * on the same worker thread, which would break the byte-identical
 * `--jobs 1` vs `--jobs 2` telemetry contract.
 */

#ifndef SPECRT_SIM_ARENA_HH
#define SPECRT_SIM_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/stats.hh"

namespace specrt
{

class Arena
{
  public:
    static constexpr size_t minClassBytes = 64;
    static constexpr size_t maxClassBytes = 4096;
    static constexpr size_t slabBytes = 64 * 1024;

    Arena() = default;
    ~Arena();

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Allocate @p bytes, aligned for any object of that size (blocks
     * are max_align_t-aligned). Requests above maxClassBytes go to
     * the general heap.
     */
    void *alloc(size_t bytes);

    /** Return a block previously obtained with alloc(bytes). */
    void free(void *p, size_t bytes);

    /**
     * Zero every published counter for the next job. All blocks must
     * have been freed. Freelists and slabs stay warm: the next job
     * reuses them without touching the heap.
     */
    void reset();

    // --- published (behavior-driven, deterministic) counters ----------

    /** Blocks handed out (freelist hits + fresh carves). */
    uint64_t allocs() const { return _allocs; }
    /** Blocks returned. */
    uint64_t frees() const { return _frees; }
    /** Blocks outstanding right now. */
    uint64_t live() const { return _allocs - _frees; }
    /** Most blocks outstanding at once. */
    uint64_t highWater() const { return _highWater; }
    /** Payload bytes served (size-class bytes, not request bytes). */
    uint64_t bytesServed() const { return _bytesServed; }
    /** Requests too large for any class (general heap fallback). */
    uint64_t oversizeAllocs() const { return _oversizeAllocs; }

    // --- warmth diagnostics (NOT published in machine telemetry) ------

    /** Blocks carved fresh from a slab (cold misses). */
    uint64_t carved() const { return _carved; }
    /** Blocks served off a freelist (warm hits). */
    uint64_t reused() const { return _reused; }
    /** Slabs backing the freelists. */
    size_t numSlabs() const { return slabs.size(); }

    // --- process-wide recycle pool ------------------------------------

    /** A warm arena from the pool, or a fresh one. */
    static std::unique_ptr<Arena> acquire();

    /**
     * The largest highWater() any arena in this process has reached,
     * sampled when an arena resets or dies (bench telemetry's
     * mem_arena_hwm_blocks; live arenas are sampled by their owner,
     * see SimContext::arenaHighWater).
     */
    static uint64_t maxHighWater();

    /**
     * Return an arena to the pool. Only arenas with no outstanding
     * blocks are recycled; anything else is destroyed.
     */
    static void recycle(std::unique_ptr<Arena> arena);

  private:
    static constexpr int numClasses = 7; // 64,128,...,4096

    static int classOf(size_t bytes);
    static size_t classBytes(int cls) { return minClassBytes << cls; }

    void *carve(int cls);

    struct FreeBlock
    {
        FreeBlock *next;
    };

    FreeBlock *freelists[numClasses] = {};
    std::vector<char *> slabs;
    /** Bump state of the newest slab. */
    char *slabCur = nullptr;
    char *slabEnd = nullptr;

    uint64_t _allocs = 0;
    uint64_t _frees = 0;
    uint64_t _highWater = 0;
    uint64_t _bytesServed = 0;
    uint64_t _oversizeAllocs = 0;
    uint64_t _carved = 0;
    uint64_t _reused = 0;
};

/**
 * Published arena counters as a "arena" stat group (attach as a
 * child of a machine's StatGroup for `system.arena.*` telemetry).
 * Throughput counters report deltas from this group's construction,
 * so a recycled arena serving several machines in turn never bleeds
 * one machine's numbers into the next; occupancy gauges (live,
 * high_water) stay absolute.
 */
class ArenaStats : public StatGroup
{
  public:
    explicit ArenaStats(const Arena &arena);

    CallbackStat allocs;
    CallbackStat frees;
    CallbackStat live;
    CallbackStat highWater;
    CallbackStat bytesServed;
    CallbackStat oversizeAllocs;
};

} // namespace specrt

#endif // SPECRT_SIM_ARENA_HH
