/**
 * @file
 * A small gem5-flavored statistics package.
 *
 * Stats register themselves with a StatGroup at construction; the
 * group can dump every stat with name, description, and value(s).
 * Three kinds are provided:
 *   Scalar       -- a single counter or value
 *   VectorStat   -- a fixed-length vector of counters (e.g.\ per node)
 *   Distribution -- bucketed histogram with mean/min/max
 */

#ifndef SPECRT_SIM_STATS_HH
#define SPECRT_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace specrt
{

class StatGroup;

/** Flat (dotted-name, value) pairs captured by snapshot(). */
using StatSnapshot = std::vector<std::pair<std::string, double>>;

/** Base class for all statistics. */
class StatBase
{
  public:
    StatBase(StatGroup *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Print "name value # desc" line(s). */
    virtual void print(std::ostream &os, const std::string &prefix)
        const = 0;

    /**
     * Append this stat's value(s) to @p out as (dotted-name, value)
     * pairs -- the machine-readable twin of print().
     */
    virtual void snapshot(StatSnapshot &out,
                          const std::string &prefix) const = 0;

    /** Reset to the initial (zero) state. */
    virtual void reset() = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** A group of statistics, dumped and reset together. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return _name; }

    void addStat(StatBase *stat) { stats.push_back(stat); }
    void
    addChild(StatGroup *child)
    {
        children.push_back(child);
    }

    /** Dump this group and all children. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Capture every stat in this group and all children as flat
     * (dotted-name, value) pairs (benchmark telemetry). Dotted names
     * must be unique across the whole subtree -- duplicates would
     * silently shadow each other in every keyed consumer (telemetry
     * JSON, timeline deltas) -- so debug builds assert on collisions.
     */
    void snapshot(StatSnapshot &out,
                  const std::string &prefix = "") const;

    /** Reset all stats in this group and all children. */
    void resetStats();

  private:
    void snapshotInto(StatSnapshot &out,
                      const std::string &prefix) const;

    std::string _name;
    std::vector<StatBase *> stats;
    std::vector<StatGroup *> children;
};

/** A single scalar counter. */
class Scalar : public StatBase
{
  public:
    Scalar(StatGroup *parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc))
    {}

    Scalar &operator=(double v) { _value = v; return *this; }
    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator++() { _value += 1; return *this; }

    double value() const { return _value; }

    void print(std::ostream &os, const std::string &prefix)
        const override;
    void snapshot(StatSnapshot &out,
                  const std::string &prefix) const override;
    void reset() override { _value = 0; }

  private:
    double _value = 0;
};

/**
 * A stat whose value is pulled from a callback at read time (live
 * counters owned elsewhere, e.g.\ the message arena). With @p rebase
 * set (the default), construction and reset() capture the current
 * underlying value as a baseline, so the stat reports deltas scoped
 * to its owner's lifetime even when the counter behind it outlives
 * the machine (a recycled arena serving several machines in turn).
 */
class CallbackStat : public StatBase
{
  public:
    using Getter = std::function<double()>;

    CallbackStat(StatGroup *parent, std::string name, std::string desc,
                 Getter get, bool rebase = true)
        : StatBase(parent, std::move(name), std::move(desc)),
          getter(std::move(get)), rebase(rebase)
    {
        if (rebase)
            base = getter();
    }

    double value() const { return getter() - base; }

    void print(std::ostream &os, const std::string &prefix)
        const override;
    void snapshot(StatSnapshot &out,
                  const std::string &prefix) const override;
    void reset() override { base = rebase ? getter() : 0; }

  private:
    Getter getter;
    bool rebase;
    double base = 0;
};

/** A fixed-length vector of counters. */
class VectorStat : public StatBase
{
  public:
    VectorStat(StatGroup *parent, std::string name, std::string desc,
               size_t size)
        : StatBase(parent, std::move(name), std::move(desc)),
          values(size, 0.0)
    {}

    double &operator[](size_t i) { return values.at(i); }
    double operator[](size_t i) const { return values.at(i); }

    size_t size() const { return values.size(); }
    double total() const;

    void print(std::ostream &os, const std::string &prefix)
        const override;
    void snapshot(StatSnapshot &out,
                  const std::string &prefix) const override;
    void reset() override;

  private:
    std::vector<double> values;
};

/** Bucketed histogram with summary moments. */
class Distribution : public StatBase
{
  public:
    /**
     * @param lo lowest bucketed value
     * @param hi highest bucketed value (inclusive)
     * @param bucket_size width of each bucket
     */
    Distribution(StatGroup *parent, std::string name, std::string desc,
                 double lo, double hi, double bucket_size);

    void sample(double v, uint64_t count = 1);

    uint64_t count() const { return _count; }
    double mean() const { return _count ? sum / _count : 0.0; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }

    void print(std::ostream &os, const std::string &prefix)
        const override;
    void snapshot(StatSnapshot &out,
                  const std::string &prefix) const override;
    void reset() override;

  private:
    double lo, hi, bucketSize;
    std::vector<uint64_t> buckets;
    uint64_t underflow = 0;
    uint64_t overflow = 0;
    uint64_t _count = 0;
    double sum = 0;
    double _min = 0;
    double _max = 0;
};

} // namespace specrt

#endif // SPECRT_SIM_STATS_HH
