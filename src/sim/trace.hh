/**
 * @file
 * Sim-time protocol trace: a low-overhead ring buffer of typed
 * records covering every layer the paper's detection story touches
 * (network messages, cache/directory state transitions, spec-bit and
 * time-stamp updates, iteration and loop boundaries,
 * checkpoint/abort/commit).
 *
 * Design rules:
 *
 *  - the disabled path is free: every instrumentation site guards
 *    with `if (trace::enabled())`, which is a single thread-local
 *    bool load. Nothing is allocated until tracing is switched on.
 *  - records are PODs in a fixed-capacity ring; when the ring is
 *    full the oldest records are overwritten (and counted as
 *    dropped). Tracing never unbounds memory.
 *  - string payloads are static-lifetime `const char *` labels
 *    (message-type names, state names, rule texts), so records stay
 *    trivially copyable and the hot path never builds std::strings.
 *  - each simulator instance is single-threaded (see logging.hh for
 *    the contract); the buffer does no locking. The ring, the
 *    ambient attribution context, and the output path all live in
 *    the instance's SimContext (sim/sim_context.hh), so concurrent
 *    simulator instances on different host threads trace
 *    independently.
 *
 * On a speculation abort, attributeAbort() walks the ring backwards
 * and synthesizes an AbortCause: the failing element, the two
 * conflicting accesses (with nodes and iterations), and the violated
 * rule of paper sections 3.2/3.3. Exporters for Chrome/Perfetto
 * trace-event JSON and a text summary live in sim/trace_export.hh.
 */

#ifndef SPECRT_SIM_TRACE_HH
#define SPECRT_SIM_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/profile.hh"
#include "sim/types.hh"

namespace specrt
{

struct TraceConfig;

namespace trace
{

/**
 * What happened. The *category* of each op reuses EventKind from
 * sim/profile.hh (the event engine's histogram axis) so profiling
 * and tracing agree on subsystem names -- see opCategory().
 */
enum class TraceOp : uint8_t
{
    MsgSend,    ///< network accepted a message (one per attempt)
    MsgRecv,    ///< message delivered to its handler
    CacheFill,  ///< line installed in a cache (label: new state)
    CacheEvict, ///< dirty line left a cache (writeback)
    CacheInval, ///< cached copy invalidated
    DirState,   ///< directory entry changed state (a -> b)
    SpecBit,    ///< First/NoShr/ROnly bits changed (a -> b, packed)
    TimeStamp,  ///< MaxR1st/MinW/PMaxR1st/PMaxW moved (a -> b)
    IterBegin,  ///< processor started an iteration
    IterEnd,    ///< processor finished an iteration
    Grant,      ///< scheduler handed out iterations [iter, a)
    LoopBegin,  ///< speculative loop run started
    LoopEnd,    ///< speculative loop run finished
    Checkpoint, ///< backup of the arrays under test taken
    Abort,      ///< speculation failed (label: detector's reason)
    Commit,     ///< speculative state committed (test passed)
    NumOps,
};

constexpr size_t numTraceOps = static_cast<size_t>(TraceOp::NumOps);

/** Name of a trace op, e.g.\ "msg_send". */
const char *traceOpName(TraceOp op);

/** Subsystem category of an op (reuses the profiling EventKind). */
EventKind opCategory(TraceOp op);

/** Which privatization time stamp a TimeStamp record moved. */
enum class TsStamp : uint8_t
{
    MaxR1st,  ///< shared directory: highest read-first iteration
    MinW,     ///< shared directory: lowest writing iteration
    PMaxR1st, ///< private directory: highest read-first by this proc
    PMaxW,    ///< private directory: highest write by this proc
};

const char *tsStampName(TsStamp s);

/**
 * One trace record. POD; `label` must be a static-lifetime string.
 * The meaning of `a` / `b` / `sub` depends on `op`:
 *
 *   MsgSend/MsgRecv: sub = MsgType, a = line address, b = flow id
 *   CacheFill:       sub = new LineState
 *   DirState:        a = old DirState, b = new DirState
 *   SpecBit:         sub = access is a write, a/b = old/new packed
 *                    non-priv wire bits (npPackDir encoding)
 *   TimeStamp:       sub = TsStamp, a/b = old/new stamp value
 *   Grant:           a = one past the last granted iteration
 *   Abort:           label = detector's reason
 */
struct TraceRecord
{
    Tick tick = 0;
    TraceOp op = TraceOp::NumOps;
    uint8_t sub = 0;
    NodeId node = invalidNode;
    NodeId peer = invalidNode;
    uint32_t loop = 0;
    IterNum iter = 0;
    Addr addr = invalidAddr;
    uint64_t a = 0;
    uint64_t b = 0;
    const char *label = nullptr;
};

/**
 * Fixed-capacity ring of trace records. One per SimContext: each
 * simulator instance records into its own ring, so concurrent
 * instances on different host threads never share trace state. Use
 * trace::buffer() for the current instance's ring.
 */
class TraceBuffer
{
  public:
    static constexpr size_t defaultCapacity = 1u << 18;

    TraceBuffer() = default;

    TraceBuffer(const TraceBuffer &) = delete;
    TraceBuffer &operator=(const TraceBuffer &) = delete;

    /** Switch tracing on with room for @p capacity records. */
    void enable(size_t capacity = defaultCapacity);
    /** Switch tracing off; keeps the recorded contents. */
    void disable();
    /** Drop all records (capacity and enablement unchanged). */
    void clear();

    /** This ring is recording. */
    bool isOn() const { return on; }

    /** Records currently retained (<= capacity). */
    size_t size() const;
    /** Total records ever emitted (including overwritten ones). */
    uint64_t recorded() const { return total; }
    /** Records lost to ring wrap-around. */
    uint64_t dropped() const;
    size_t capacity() const { return ring.size(); }

    /** Record @p i, oldest first (i in [0, size())). */
    const TraceRecord &at(size_t i) const;

    /** Append one record (no-op unless enabled). */
    void emit(const TraceRecord &r);

    /** Fresh flow id tying a MsgSend to its MsgRecv(s). */
    uint64_t nextFlow() { return ++flowCounter; }

    /** Loop id stamped into subsequent records. */
    void setLoop(uint32_t id) { curLoop = id; }
    uint32_t loop() const { return curLoop; }

  private:
    std::vector<TraceRecord> ring;
    size_t head = 0;     ///< next slot to write
    bool wrapped = false;
    bool on = false;
    uint64_t total = 0;
    uint64_t flowCounter = 0;
    uint32_t curLoop = 0;
};

/** The current SimContext's trace ring. */
TraceBuffer &buffer();

/**
 * Per-host-thread mirror of "is the current context's ring
 * recording"; the hot-path guard behind enabled(). Maintained by
 * enable()/disable() and context activation -- do not touch
 * directly.
 */
extern thread_local bool tlsTraceOn;

/** True when the current context is tracing (the hot-path guard). */
inline bool
enabled()
{
    return tlsTraceOn;
}

/** Recompute tlsTraceOn from the current context (internal). */
void refreshEnabled();

/**
 * Fresh loop id for the current context. Every executor run gets
 * one, so records of consecutive runs (degradation retries, sweep
 * epochs) stay distinguishable in the exported trace while two
 * contexts' ids stay independent (campaign determinism).
 */
uint32_t nextLoopId();

// --- ambient context --------------------------------------------------
//
// The pure transition functions in spec/nonpriv.cc and spec/priv.cc
// have no machine handles, yet their bit flips are exactly what abort
// attribution needs. The speculation units publish (tick, node,
// element, iteration) here before invoking them; the pure logic
// records transitions against this context. It lives in the
// SimContext, so each instance (single-threaded by the same contract
// as the rest of the simulator) has its own.

struct Ctx
{
    Tick tick = 0;
    NodeId node = invalidNode;
    Addr elem = invalidAddr;
    IterNum iter = 0;
};

Ctx &ctx();

/** RAII publish/restore of the ambient context (cheap when off). */
class ScopedCtx
{
  public:
    ScopedCtx(Tick tick, NodeId node, Addr elem, IterNum iter)
        : active(enabled())
    {
        if (active) {
            saved = ctx();
            ctx() = {tick, node, elem, iter};
        }
    }

    ~ScopedCtx()
    {
        if (active)
            ctx() = saved;
    }

    ScopedCtx(const ScopedCtx &) = delete;
    ScopedCtx &operator=(const ScopedCtx &) = delete;

  private:
    bool active;
    Ctx saved;
};

/** Record a non-priv spec-bit transition against the ambient ctx. */
void specBits(bool is_write, uint32_t old_packed, uint32_t new_packed);

/** Record a time-stamp move against the ambient ctx. */
void timeStamp(TsStamp which, IterNum old_v, IterNum new_v);

// --- abort-cause attribution ------------------------------------------

/**
 * The reconstructed cause of a speculation abort: the failing
 * element, the two conflicting accesses, and the violated rule of
 * paper sections 3.2 (non-privatization access bits) / 3.3
 * (privatization time stamps).
 */
struct AbortCause
{
    bool valid = false;
    Addr elemAddr = invalidAddr;
    NodeId failNode = invalidNode;
    IterNum failIter = 0;
    /** The detector's raw reason string. */
    const char *reason = nullptr;
    /** The paper rule the access pair violates. */
    const char *rule = nullptr;

    /** Earlier access of the conflicting pair (when reconstructed). */
    bool haveEarlier = false;
    TraceRecord earlier;
    /** The failing access itself (when reconstructed). */
    bool haveFailing = false;
    TraceRecord failing;

    /** Multi-line human-readable report. */
    std::string str() const;
};

/**
 * Map a detector reason string onto the §3.2/§3.3 rule it reports.
 * Returns a static string; never null.
 */
const char *violatedRule(const char *reason);

/**
 * Walk @p buf newest-to-oldest and reconstruct the cause of the
 * failure latched for @p elem at @p node in iteration @p iter: the
 * failing access is the newest SpecBit/TimeStamp record for the
 * element by that (node, iter); the conflicting earlier access is
 * the newest one by anyone else. Usable even when the exact pair is
 * gone from the ring (valid is still set; the access fields are just
 * absent).
 */
AbortCause attributeAbort(const TraceBuffer &buf, Addr elem,
                          NodeId node, IterNum iter,
                          const char *reason, Tick tick);

/**
 * Apply a TraceConfig (sim/config.hh) to the current context:
 * enable its ring when asked and remember the output path for the
 * at-exit export. Idempotent.
 */
void applyConfig(const TraceConfig &tc);

/**
 * Enable tracing from SPECRT_TRACE / SPECRT_TRACE_OUT /
 * SPECRT_TRACE_CAPACITY if set (checked once per context; the
 * environment itself is parsed once per process). Called by the
 * executor so any driver -- tests included -- honors the
 * environment. @return true when tracing is on afterwards.
 */
bool maybeEnableFromEnv();

/** Output path requested via config/env for the current context
 *  ("" = none). */
const std::string &outPath();

} // namespace trace
} // namespace specrt

#endif // SPECRT_SIM_TRACE_HH
