/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Workload generators and schedulers must be reproducible run-to-run,
 * so everything random in specrt draws from a seeded Rng rather than
 * std::random_device or rand().
 */

#ifndef SPECRT_SIM_RANDOM_HH
#define SPECRT_SIM_RANDOM_HH

#include <cstdint>
#include <string>

namespace specrt
{

/** xoshiro256** generator; small, fast, and splittable via reseed. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed (splitmix64). */
    void reseed(uint64_t seed);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    uint64_t nextBounded(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p. */
    bool nextBool(double p = 0.5) { return nextDouble() < p; }

  private:
    uint64_t s[4];
};

/**
 * Derive an independent stream seed from a base seed and a stream
 * name (FNV-1a over the name folded into the base through
 * splitmix64). The same (base, name) pair always yields the same
 * seed; distinct names decorrelate even for adjacent base seeds.
 */
uint64_t deriveSeed(uint64_t base, const std::string &name);

} // namespace specrt

#endif // SPECRT_SIM_RANDOM_HH
