/**
 * @file
 * FaultPlan: a seeded, reproducible schedule of injectable network
 * faults (latency jitter, duplication, drop).
 *
 * The plan is consulted by Network::send() for every message while
 * armed. Decisions are drawn from a private xoshiro256** stream, so
 * one (seed, workload, config) triple replays the exact same fault
 * schedule -- a failing torture seed is a deterministic repro.
 *
 * Eligibility is per message type:
 *  - drop: only transactions somebody retries. ReadReq/WriteReq are
 *    covered by the cache-controller watchdog; the fire-and-forget
 *    speculation signals (FirstUpdate, ROnlyUpdate, ReadFirstSig,
 *    FirstWriteSig, CopyOutSig) are retransmitted by the network
 *    interface. Replies, forwards, writebacks, acks, and the
 *    deferred read-in legs are never dropped: the protocol has no
 *    recovery leg for them.
 *  - duplicate: the drop set plus the idempotent home/cache replies
 *    (ReadReply, WriteReply, Inval, InvalAck).
 *  - jitter: every type; per-(src,dst) FIFO order is preserved by
 *    the network's channel floor, matching the paper's in-order
 *    delivery assumption.
 */

#ifndef SPECRT_SIM_FAULT_HH
#define SPECRT_SIM_FAULT_HH

#include "sim/config.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace specrt
{

enum class MsgType : uint8_t;

/** What the plan decided for one transmission. */
struct FaultDecision
{
    bool drop = false;
    bool duplicate = false;
    Cycles jitter = 0;
};

/** Seeded fault schedule, consulted per transmitted message. */
class FaultPlan : public StatGroup
{
  public:
    explicit FaultPlan(const FaultConfig &config);

    const FaultConfig &config() const { return cfg; }

    /** Injection only happens while armed (speculative loop phase). */
    void arm() { _armed = true; }
    void disarm() { _armed = false; }
    bool armed() const { return _armed; }

    /** Restart the schedule from a new seed (per-attempt reseed). */
    void reseed(uint64_t seed);

    /** Draw the fate of one transmission. */
    FaultDecision decide(MsgType type);

    /** A drop-eligible type (given the watchdog configuration). */
    static bool dropEligible(MsgType t, bool watchdog_enabled);
    /** A dup-eligible type. */
    static bool dupEligible(MsgType t, bool watchdog_enabled);
    /** Signals the network itself retransmits when dropped. */
    static bool netRetransmits(MsgType t);

    Scalar faultsInjected;
    Scalar drops;
    Scalar dups;
    Scalar jitters;

  private:
    FaultConfig cfg;
    Rng rng;
    bool _armed = false;
};

} // namespace specrt

#endif // SPECRT_SIM_FAULT_HH
