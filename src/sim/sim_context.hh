/**
 * @file
 * Instance-scoped simulator state.
 *
 * Historically the sim layer kept its cross-cutting mutable state in
 * process globals: the log sink registry, the SPECRT_TRACE latch and
 * its ring buffer, the trace loop-id counter, and ad-hoc RNG streams.
 * That was fine while one process modeled one machine, but it made
 * concurrent simulator instances impossible -- every experiment the
 * paper's evaluation needs (seeded torture grids, figure sweeps,
 * ablation benches) is a fleet of *independent* single-threaded
 * simulations that should fan out across host cores.
 *
 * A SimContext owns all of that state for one simulator instance:
 *
 *  - the log sink and throw-on-fatal flag (sim/logging.hh);
 *  - the protocol trace ring, its ambient attribution context, the
 *    requested output path, and the loop-id counter (sim/trace.hh);
 *  - named deterministic RNG streams derived from a base seed
 *    (sim/random.hh).
 *
 * Stats were already instance-scoped (every StatBase registers with
 * a StatGroup owned by its machine), so they need no home here;
 * campaign aggregation merges per-machine StatGroup::snapshot()s.
 *
 * Threading model: each simulator instance stays SINGLE-THREADED
 * (see logging.hh), but different instances may run on different
 * host threads concurrently. The *current* context is a thread-local
 * pointer; every thread starts with its own default context, and
 * ScopedSimContext activates a specific instance for a scope (the
 * campaign runner does this around each job). Sim-layer code reaches
 * its state through SimContext::current(), which therefore never
 * observes another thread's context.
 */

#ifndef SPECRT_SIM_SIM_CONTEXT_HH
#define SPECRT_SIM_SIM_CONTEXT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "obs/event_log.hh"
#include "sim/arena.hh"
#include "sim/critpath.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/timeline.hh"
#include "sim/trace.hh"

namespace specrt
{

class ScheduleController;

namespace stall
{
class Engine;
}

class SimContext
{
  public:
    /** @param seed base seed of the context's named RNG streams. */
    explicit SimContext(uint64_t seed = 0) : baseSeed(seed) {}

    /**
     * Exports the trace ring to traceOutPath when the environment
     * asked for it (traceExportOnDestroy). This happens in the
     * destructor -- not an atexit handler -- because the main
     * thread's default context is itself thread-local, and C++
     * destroys thread-locals before atexit handlers run.
     */
    ~SimContext();

    SimContext(const SimContext &) = delete;
    SimContext &operator=(const SimContext &) = delete;

    /**
     * The context active on this host thread. Never null: a thread
     * that has not activated one explicitly gets its own default
     * context (created on first use, destroyed at thread exit).
     */
    static SimContext &current();

    // --- logging (accessed by sim/logging.cc) -------------------------

    /** Captures log output instead of stderr when set. */
    LogSink logSink;
    /** fatal()/panic() throw FatalError instead of terminating. */
    bool logThrowOnFatal = false;

    // --- protocol trace (accessed by sim/trace.cc) --------------------

    trace::TraceBuffer &traceBuffer() { return traceBuf; }
    const trace::TraceBuffer &traceBuffer() const { return traceBuf; }

    /** Ambient (tick, node, elem, iter) for abort attribution. */
    trace::Ctx traceCtx;
    /** Where to write the exported trace ("" = nowhere). */
    std::string traceOutPath;
    /** Loop ids handed out by trace::nextLoopId(). */
    uint32_t traceNextLoopId = 0;
    /** SPECRT_TRACE has been applied to this context already. */
    bool traceEnvChecked = false;
    /**
     * Export the ring to traceOutPath when this context dies. Set
     * only by the SPECRT_TRACE env path, so a process whose run was
     * env-traced leaves the file behind without the code under test
     * knowing about tracing. Concurrent traced contexts (campaign
     * jobs under SPECRT_TRACE) export one at a time; the last one to
     * die wins the file, matching CI's serial rerun semantics.
     */
    bool traceExportOnDestroy = false;

    // --- metric timeline (accessed by sim/timeline.cc) ----------------

    timeline::Timeline &timelineData() { return timelineTl; }
    const timeline::Timeline &timelineData() const
    {
        return timelineTl;
    }

    /** Where to write the timeline CSV ("" = nowhere). */
    std::string timelineOutPath;
    /** SPECRT_TIMELINE has been applied to this context already. */
    bool timelineEnvChecked = false;
    /**
     * Write the CSV to timelineOutPath when this context dies; set
     * only by the SPECRT_TIMELINE env path (same contract as
     * traceExportOnDestroy).
     */
    bool timelineExportOnDestroy = false;

    // --- critical path / stall attribution (sim/critpath.cc) ----------

    critpath::Recorder &critpathData() { return critpathRec; }
    const critpath::Recorder &critpathData() const
    {
        return critpathRec;
    }

    /** Where to write the critpath JSON ("" = nowhere). */
    std::string critpathOutPath;
    /** SPECRT_CRITPATH has been applied to this context already. */
    bool critpathEnvChecked = false;
    /**
     * Write the Perfetto report to critpathOutPath when this context
     * dies; set only by the SPECRT_CRITPATH env path (same contract
     * as traceExportOnDestroy).
     */
    bool critpathExportOnDestroy = false;

    // --- structured event log (accessed by obs/event_log.cc) ----------

    obs::EventLog &eventsData() { return eventsLog; }
    const obs::EventLog &eventsData() const { return eventsLog; }

    /** Where to write the event JSONL ("" = nowhere). */
    std::string eventsOutPath;
    /** SPECRT_EVENTS has been applied to this context already. */
    bool eventsEnvChecked = false;
    /**
     * Write the JSONL to eventsOutPath when this context dies; set
     * only by the SPECRT_EVENTS env path (same contract as
     * traceExportOnDestroy).
     */
    bool eventsExportOnDestroy = false;

    /**
     * Fingerprint (hex MachineConfig::fingerprint()) of the last
     * machine a LoopExecutor ran under this context; "" until a run
     * happens. Campaign outcomes carry it so a failure line names
     * the exact config to replay (campaign::describeFailures).
     */
    std::string configFingerprint;

    /**
     * Stall-attribution engine of the run in progress (sim/stall.hh).
     * Owned by the profiled run's LoopExecutor, published here so
     * protocol engines deep inside the machine reach it without
     * plumbing (the scheduleController pattern). Null when no
     * profiled run is active. Not owned.
     */
    stall::Engine *stallEngine = nullptr;

    // --- schedule exploration (read by mem/dsm.cc) --------------------

    /**
     * Controller every DsmSystem constructed under this context
     * installs into its event queue (sim/event_queue.hh). The
     * explorer (verify/explorer.hh) sets this around a run so the
     * machine built deep inside LoopExecutor::run() comes up
     * controlled; null (the default) means the plain deterministic
     * schedule. Not owned.
     */
    ScheduleController *scheduleController = nullptr;

    // --- message arena (accessed by mem/network.cc) --------------------

    /**
     * The context's pooled-message arena, acquired lazily from the
     * process-wide recycle pool (sim/arena.hh) and returned to it
     * when the context dies with nothing outstanding. Every machine
     * built under this context allocates its in-flight message
     * copies here; its published counters are deterministic per job,
     * so campaign telemetry stays byte-identical across --jobs N.
     */
    Arena &msgArena();

    /**
     * High-water mark of this context's arena, without creating one
     * (0 when the context never allocated a message).
     */
    uint64_t arenaHighWater() const
    {
        return arena ? arena->highWater() : 0;
    }

    // --- deterministic randomness -------------------------------------

    /** Base seed the named streams derive from. */
    uint64_t baseSeed = 0;

    /**
     * The named RNG stream @p name, created (seeded from baseSeed and
     * the stream name) on first use. Distinct names give independent,
     * reproducible streams; the same (baseSeed, name) always yields
     * the same sequence.
     */
    Rng &rng(const std::string &name);

    /** Reset every named stream to its initial seeded state. */
    void reseed(uint64_t seed);

  private:
    trace::TraceBuffer traceBuf;
    timeline::Timeline timelineTl;
    critpath::Recorder critpathRec;
    obs::EventLog eventsLog;
    std::map<std::string, Rng> rngs;
    std::unique_ptr<Arena> arena;
};

/**
 * RAII activation of a SimContext on the calling thread. The
 * previous context (possibly the thread default) is restored on
 * destruction. Not copyable; scopes nest.
 */
class ScopedSimContext
{
  public:
    explicit ScopedSimContext(SimContext &ctx);
    ~ScopedSimContext();

    ScopedSimContext(const ScopedSimContext &) = delete;
    ScopedSimContext &operator=(const ScopedSimContext &) = delete;

  private:
    SimContext *prev;
};

} // namespace specrt

#endif // SPECRT_SIM_SIM_CONTEXT_HH
