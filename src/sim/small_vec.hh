/**
 * @file
 * A fixed-inline-capacity vector for trivially copyable payloads.
 *
 * Messages carry a cache line of data plus one word of speculation
 * state per element. Both are tiny and bounded by the line size, so
 * storing them in std::vector means two heap allocations per message
 * construction -- and messages are copied on every network delivery.
 * SmallVec keeps up to N elements inline (no allocation at all) and
 * falls back to the heap only for exotic configurations whose lines
 * exceed the inline capacity. With the default 64-byte lines the
 * whole protocol runs with every payload inline.
 */

#ifndef SPECRT_SIM_SMALL_VEC_HH
#define SPECRT_SIM_SMALL_VEC_HH

#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace specrt
{

template <typename T, uint32_t N>
class SmallVec
{
    static_assert(std::is_trivially_copyable<T>::value,
                  "SmallVec payloads must be trivially copyable");
    static_assert(std::is_trivially_destructible<T>::value,
                  "SmallVec payloads must be trivially destructible");

  public:
    using value_type = T;

    SmallVec() = default;

    explicit SmallVec(uint32_t n) { resize(n); }

    SmallVec(const SmallVec &o) { assign(o.data(), o.size()); }

    SmallVec(SmallVec &&o) noexcept { steal(o); }

    SmallVec &
    operator=(const SmallVec &o)
    {
        if (this != &o)
            assign(o.data(), o.size());
        return *this;
    }

    SmallVec &
    operator=(SmallVec &&o) noexcept
    {
        if (this != &o) {
            release();
            steal(o);
        }
        return *this;
    }

    ~SmallVec() { release(); }

    /** Copy @p n elements from @p src (any contiguous source). */
    void
    assign(const T *src, uint32_t n)
    {
        reserve(n);
        if (n)
            std::memcpy(ptr, src, size_t(n) * sizeof(T));
        len = n;
    }

    /** Copy from any contiguous container (std::vector, SmallVec). */
    template <typename C>
    void
    assign(const C &c)
    {
        assign(c.data(), static_cast<uint32_t>(c.size()));
    }

    /** Resize; new elements are value-initialized (zeroed). */
    void
    resize(uint32_t n)
    {
        reserve(n);
        if (n > len)
            std::memset(ptr + len, 0, size_t(n - len) * sizeof(T));
        len = n;
    }

    void
    push_back(const T &v)
    {
        reserve(len + 1);
        ptr[len++] = v;
    }

    void clear() { len = 0; }

    T *data() { return ptr; }
    const T *data() const { return ptr; }
    uint32_t size() const { return len; }
    bool empty() const { return len == 0; }

    T &operator[](uint32_t i) { return ptr[i]; }
    const T &operator[](uint32_t i) const { return ptr[i]; }

    T *begin() { return ptr; }
    T *end() { return ptr + len; }
    const T *begin() const { return ptr; }
    const T *end() const { return ptr + len; }

    bool
    operator==(const SmallVec &o) const
    {
        return len == o.len &&
               (len == 0 ||
                std::memcmp(ptr, o.ptr, size_t(len) * sizeof(T)) == 0);
    }
    bool operator!=(const SmallVec &o) const { return !(*this == o); }

    /** True when the payload lives in the inline buffer. */
    bool inlined() const { return ptr == inlineBuf(); }

    static constexpr uint32_t inlineCapacity = N;

  private:
    T *inlineBuf() { return reinterpret_cast<T *>(storage); }
    const T *
    inlineBuf() const
    {
        return reinterpret_cast<const T *>(storage);
    }

    void
    reserve(uint32_t n)
    {
        if (n <= cap)
            return;
        uint32_t newCap = cap * 2 > n ? cap * 2 : n;
        T *p = static_cast<T *>(
            ::operator new(size_t(newCap) * sizeof(T)));
        if (len)
            std::memcpy(p, ptr, size_t(len) * sizeof(T));
        if (!inlined())
            ::operator delete(ptr);
        ptr = p;
        cap = newCap;
    }

    void
    release()
    {
        if (!inlined())
            ::operator delete(ptr);
        ptr = inlineBuf();
        cap = N;
        len = 0;
    }

    void
    steal(SmallVec &o) noexcept
    {
        if (o.inlined()) {
            ptr = inlineBuf();
            cap = N;
            len = o.len;
            if (len)
                std::memcpy(ptr, o.ptr, size_t(len) * sizeof(T));
        } else {
            ptr = o.ptr;
            cap = o.cap;
            len = o.len;
            o.ptr = o.inlineBuf();
            o.cap = N;
        }
        o.len = 0;
    }

    alignas(T) unsigned char storage[size_t(N) * sizeof(T)];
    T *ptr = inlineBuf();
    uint32_t len = 0;
    uint32_t cap = N;
};

} // namespace specrt

#endif // SPECRT_SIM_SMALL_VEC_HH
