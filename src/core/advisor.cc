#include "core/advisor.hh"

#include <map>
#include <set>
#include <sstream>

#include "core/loop_exec.hh"

namespace specrt
{

DegradationLog::DegradationLog()
    : StatGroup("degradation"),
      degradations(this, "degradations",
                   "execution-mode downgrades performed")
{
}

void
DegradationLog::record(ExecMode from, ExecMode to, std::string reason)
{
    ++degradations;
    _records.push_back({from, to, std::move(reason)});
}

std::string
DegradationLog::report() const
{
    std::ostringstream os;
    for (const DegradationRecord &r : _records) {
        os << execModeName(r.from) << " -> " << execModeName(r.to)
           << ": " << r.reason << "\n";
    }
    return os.str();
}

std::vector<ArrayAdvice>
adviseTests(const std::vector<AccessEvent> &trace,
            const std::vector<ArrayDecl> &decls)
{
    std::vector<ArrayAdvice> out;
    if (decls.empty())
        return out;

    std::vector<std::vector<AccessEvent>> per(decls.size());
    for (const AccessEvent &e : trace) {
        if (e.arrayId >= 0 &&
            e.arrayId < static_cast<int>(decls.size()))
            per[e.arrayId].push_back(e);
    }

    for (size_t d = 0; d < decls.size(); ++d) {
        ArrayAdvice a;
        a.declIdx = static_cast<int>(d);
        a.name = decls[d].name;
        const std::vector<AccessEvent> &sub = per[d];
        a.accessShare =
            trace.empty() ? 0.0
                          : static_cast<double>(sub.size()) /
                                static_cast<double>(trace.size());

        a.readOnly = true;
        for (const AccessEvent &e : sub)
            a.readOnly &= !e.isWrite;

        a.nonPrivOk = Oracle::nonPrivParallel(sub);
        a.privOk = Oracle::privParallel(sub);
        a.reductionOk = !sub.empty() && Oracle::reductionValid(sub);
        a.lrpd = Oracle::lrpd(sub);

        // Schedule-robust non-privatization: every element is
        // read-only or touched by a single iteration (then any
        // scheduling keeps it on one processor).
        {
            std::map<uint64_t, std::set<IterNum>> iters;
            std::map<uint64_t, bool> written;
            for (const AccessEvent &e : sub) {
                iters[e.elem].insert(e.iter);
                written[e.elem] |= e.isWrite;
            }
            a.nonPrivRobust = true;
            for (const auto &[elem, is] : iters) {
                if (written[elem] && is.size() > 1) {
                    a.nonPrivRobust = false;
                    break;
                }
            }
        }

        // Recommendation, cheapest first. Read-only and untraced
        // arrays need no test at all.
        if (sub.empty() || a.readOnly) {
            a.recommended = TestType::None;
        } else if (a.nonPrivRobust) {
            a.recommended = TestType::NonPriv;
        } else if (a.privOk) {
            a.recommended = TestType::Priv;
        } else if (a.reductionOk) {
            a.recommended = TestType::Reduction;
        } else if (a.nonPrivOk) {
            // Passed under the profiled placement only: still usable
            // with block scheduling (the Track case), flagged via
            // nonPrivRobust == false.
            a.recommended = TestType::NonPriv;
        } else {
            // Nothing passes: speculate with the cheap test and fail
            // fast into serial re-execution.
            a.recommended = TestType::NonPriv;
            a.expectSerial = true;
        }
        out.push_back(std::move(a));
    }
    return out;
}

std::string
adviceReport(const std::vector<ArrayAdvice> &advice)
{
    std::ostringstream os;
    for (const ArrayAdvice &a : advice) {
        os << a.name << ": ";
        if (a.recommended == TestType::None) {
            os << (a.readOnly ? "read-only" : "untraced")
               << ", no run-time test needed\n";
            continue;
        }
        switch (a.recommended) {
          case TestType::NonPriv:
            os << "non-privatization test";
            if (!a.nonPrivRobust && !a.expectSerial)
                os << " (placement-sensitive: keep dependent "
                      "iterations in one block)";
            break;
          case TestType::Priv:
            os << "privatization test (read-in/copy-out)";
            break;
          case TestType::Reduction:
            os << "reduction test (tagged accesses)";
            break;
          default:
            break;
        }
        if (a.expectSerial)
            os << " -- expected to FAIL; loop likely serial";
        char buf[64];
        std::snprintf(buf, sizeof(buf), " [%.0f%% of accesses]",
                      100 * a.accessShare);
        os << buf << "\n";
    }
    return os.str();
}

} // namespace specrt
