#include "core/parallelizer.hh"

#include <sstream>

namespace specrt
{

RunResult
SpeculativeParallelizer::run(Workload &w, const ExecConfig &xc) const
{
    LoopExecutor exec(cfg, w, xc);
    return exec.run();
}

ScenarioComparison
SpeculativeParallelizer::compare(Workload &w, ExecConfig base) const
{
    ScenarioComparison c;
    base.mode = ExecMode::Serial;
    c.serial = run(w, base);
    base.mode = ExecMode::Ideal;
    c.ideal = run(w, base);
    base.mode = ExecMode::SW;
    c.sw = run(w, base);
    base.mode = ExecMode::HW;
    c.hw = run(w, base);
    return c;
}

SpeculativeParallelizer::Repeated
SpeculativeParallelizer::runRepeated(
    const std::function<std::unique_ptr<Workload>(int)> &make,
    const ExecConfig &xc, int executions) const
{
    Repeated agg;
    agg.runs.reserve(executions);
    for (int i = 0; i < executions; ++i) {
        std::unique_ptr<Workload> w = make(i);
        RunResult r = run(*w, xc);
        agg.totalTicks += r.totalTicks;
        agg.failures += r.passed ? 0 : 1;
        agg.runs.push_back(std::move(r));
    }
    return agg;
}

std::string
SpeculativeParallelizer::describe(const RunResult &r)
{
    std::ostringstream os;
    os << execModeName(r.mode) << ": " << r.totalTicks << " cycles"
       << (r.passed ? "" : " [test FAILED, re-executed serially]")
       << " (loop " << r.phases.loop;
    if (r.phases.backup)
        os << ", backup " << r.phases.backup;
    if (r.phases.zeroOut)
        os << ", zero-out " << r.phases.zeroOut;
    if (r.phases.merge)
        os << ", merge " << r.phases.merge;
    if (r.phases.analysis)
        os << ", analysis " << r.phases.analysis;
    if (r.phases.copyOut)
        os << ", copy-out " << r.phases.copyOut;
    if (r.phases.restore)
        os << ", restore " << r.phases.restore;
    if (r.phases.serial)
        os << ", serial " << r.phases.serial;
    os << ")";
    return os.str();
}

} // namespace specrt
