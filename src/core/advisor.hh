/**
 * @file
 * Test-selection advisor.
 *
 * Paper section 2.2.4 envisions the compiler (or the programmer)
 * deciding per array whether to apply the non-privatization test,
 * the privatization test, or none, "using heuristics and statistics
 * about the parallelization success-rate in previous executions".
 * The advisor is that statistics engine: given the access trace of a
 * profiled execution, it evaluates every test's verdict per array
 * and recommends the cheapest test that would have passed.
 */

#ifndef SPECRT_CORE_ADVISOR_HH
#define SPECRT_CORE_ADVISOR_HH

#include <string>
#include <vector>

#include "runtime/workload.hh"
#include "sim/stats.hh"
#include "spec/oracle.hh"

namespace specrt
{

enum class ExecMode;

/** Advice for one array of a loop. */
struct ArrayAdvice
{
    int declIdx = -1;
    std::string name;
    /** Fraction of the loop's traced accesses touching this array. */
    double accessShare = 0;
    bool readOnly = false;
    /** The non-privatization test would pass under the profiled
     *  iteration placement. */
    bool nonPrivOk = false;
    /** ... and under ANY placement (every element single-iteration
     *  or read-only), so the verdict is schedule-robust. */
    bool nonPrivRobust = false;
    /** The privatization test (with read-in/copy-out) would pass. */
    bool privOk = false;
    /** All accesses are tagged reduction accesses. */
    bool reductionOk = false;
    /** Iteration-wise LRPD verdict (the software scheme's view). */
    LrpdVerdict lrpd = LrpdVerdict::NotParallel;
    /** The cheapest run-time test expected to pass, or None when the
     *  array is analyzable / read-only, or NonPriv as the fallback
     *  when nothing passes (fail fast, re-execute serially). */
    TestType recommended = TestType::None;
    /** True when no test is expected to pass. */
    bool expectSerial = false;
};

/**
 * Analyze a profiled trace (e.g.\ from an Ideal run with keepTrace)
 * and advise a test per declared array.
 *
 * @param trace the access trace (AccessEvent::arrayId = decl index)
 * @param decls the workload's array declarations
 */
std::vector<ArrayAdvice> adviseTests(
    const std::vector<AccessEvent> &trace,
    const std::vector<ArrayDecl> &decls);

/** Render advice as a short report. */
std::string adviceReport(const std::vector<ArrayAdvice> &advice);

/** One recorded execution-mode downgrade. */
struct DegradationRecord
{
    ExecMode from;
    ExecMode to;
    /** Why the higher tier was abandoned (e.g.\ what was lost). */
    std::string reason;
};

/**
 * History of graceful degradations (HW -> SW -> Serial), kept by the
 * advisor layer so future executions can skip a tier that keeps
 * failing, in the same spirit as the paper's success-rate
 * statistics. Filled in by runWithDegradation.
 */
class DegradationLog : public StatGroup
{
  public:
    DegradationLog();

    void record(ExecMode from, ExecMode to, std::string reason);

    const std::vector<DegradationRecord> &records() const
    {
        return _records;
    }

    /** Render the history as a short report. */
    std::string report() const;

    Scalar degradations;

  private:
    std::vector<DegradationRecord> _records;
};

} // namespace specrt

#endif // SPECRT_CORE_ADVISOR_HH
