/**
 * @file
 * Public facade of the specrt library.
 *
 * SpeculativeParallelizer runs a workload (a loop the compiler could
 * not analyze) under any of the paper's four scenarios and provides
 * a convenience comparison across all of them -- the measurement the
 * paper's Figures 11-14 are built from.
 */

#ifndef SPECRT_CORE_PARALLELIZER_HH
#define SPECRT_CORE_PARALLELIZER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/loop_exec.hh"

namespace specrt
{

/** Results of running one workload under all four scenarios. */
struct ScenarioComparison
{
    RunResult serial;
    RunResult ideal;
    RunResult sw;
    RunResult hw;

    double
    speedup(const RunResult &r) const
    {
        return r.totalTicks
                   ? static_cast<double>(serial.totalTicks) /
                         static_cast<double>(r.totalTicks)
                   : 0.0;
    }

    double idealSpeedup() const { return speedup(ideal); }
    double swSpeedup() const { return speedup(sw); }
    double hwSpeedup() const { return speedup(hw); }
};

/**
 * Entry point for running speculative run-time parallelization on a
 * modeled machine.
 */
class SpeculativeParallelizer
{
  public:
    explicit SpeculativeParallelizer(MachineConfig config = {})
        : cfg(std::move(config))
    {
        cfg.validate();
    }

    const MachineConfig &config() const { return cfg; }

    /** Run one scenario. A fresh machine is built for the run. */
    RunResult run(Workload &w, const ExecConfig &xc) const;

    /**
     * Run Serial, Ideal, SW, and HW with a shared base
     * configuration (mode overridden per scenario).
     */
    ScenarioComparison compare(Workload &w, ExecConfig base) const;

    /**
     * Aggregate over repeated loop executions (the paper's loops run
     * hundreds to thousands of times with varying inputs; caches are
     * flushed between executions, which a fresh machine per run
     * models exactly).
     */
    struct Repeated
    {
        std::vector<RunResult> runs;
        Tick totalTicks = 0;
        uint64_t failures = 0;

        double
        meanTicks() const
        {
            return runs.empty() ? 0.0
                                : static_cast<double>(totalTicks) /
                                      static_cast<double>(runs.size());
        }
    };

    /**
     * Run @p executions instances of a loop; @p make builds the
     * workload for execution index i (different inputs per
     * execution, as in Ocean's stride families or Track's 56
     * instances).
     */
    Repeated runRepeated(
        const std::function<std::unique_ptr<Workload>(int)> &make,
        const ExecConfig &xc, int executions) const;

    /** One-line textual summary of a result. */
    static std::string describe(const RunResult &r);

  private:
    MachineConfig cfg;
};

} // namespace specrt

#endif // SPECRT_CORE_PARALLELIZER_HH
