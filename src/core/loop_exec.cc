#include "core/loop_exec.hh"

#include <algorithm>
#include <cinttypes>

#include "obs/event_log.hh"
#include "sim/critpath.hh"
#include "sim/logging.hh"
#include "sim/sim_context.hh"
#include "sim/trace.hh"

namespace specrt
{

namespace
{

/** Emit an executor-level marker record (no-op when tracing is off). */
void
traceMark(trace::TraceOp op, Tick tick, const char *label,
          uint64_t a = 0)
{
    if (!trace::enabled())
        return;
    trace::TraceRecord r;
    r.tick = tick;
    r.op = op;
    r.a = a;
    r.label = label;
    trace::buffer().emit(r);
}

/**
 * Open a new loop track: every executor run gets a fresh loop id so
 * records from consecutive runs (degradation retries, epochs of a
 * sweep) stay distinguishable in the exported trace.
 */
void
beginTraceLoop(Tick tick, const char *mode, uint64_t iters)
{
    if (!trace::enabled())
        return;
    trace::buffer().setLoop(trace::nextLoopId());
    traceMark(trace::TraceOp::LoopBegin, tick, mode, iters);
}

/** Hands each processor exactly one pseudo-iteration [p+1, p+2). */
class OneShotSource : public WorkSource
{
  public:
    explicit OneShotSource(int num_procs) : given(num_procs, false) {}

    Grant
    next(NodeId p, Tick) override
    {
        if (given.at(p))
            return {true, 0, 0, 0};
        given[p] = true;
        return {false, p + 1, p + 2, 0};
    }

  private:
    std::vector<bool> given;
};

/**
 * Shift another source's grants by a fixed iteration offset (used
 * to run one time-stamp epoch [offset+1, offset+count]).
 */
class ShiftedSource : public WorkSource
{
  public:
    ShiftedSource(WorkSource &inner, IterNum offset)
        : inner(inner), offset(offset)
    {}

    Grant
    next(NodeId p, Tick now) override
    {
        Grant g = inner.next(p, now);
        if (!g.done) {
            g.lo += offset;
            g.hi += offset;
        }
        return g;
    }

  private:
    WorkSource &inner;
    IterNum offset;
};

/** Split [0, n) into proc-many contiguous slices. */
std::pair<uint64_t, uint64_t>
sliceOf(uint64_t n, int procs, int p)
{
    uint64_t per = n / procs;
    uint64_t extra = n % procs;
    uint64_t lo = p * per + std::min<uint64_t>(p, extra);
    uint64_t size = per + (static_cast<uint64_t>(p) < extra ? 1 : 0);
    return {lo, lo + size};
}

} // namespace

const char *
execModeName(ExecMode m)
{
    switch (m) {
      case ExecMode::Serial: return "Serial";
      case ExecMode::Ideal:  return "Ideal";
      case ExecMode::SW:     return "SW";
      case ExecMode::HW:     return "HW";
    }
    return "Unknown";
}

LoopExecutor::LoopExecutor(const MachineConfig &config,
                           Workload &workload,
                           const ExecConfig &exec_config)
    : cfg(config), w(workload), xc(exec_config)
{
}

LoopExecutor::~LoopExecutor()
{
    // The engine was published through the current context
    // (stall::install); retract it before it dies.
    if (stallEng && stall::current() == stallEng.get())
        stall::install(nullptr);
}

IterNum
LoopExecutor::numIters() const
{
    IterNum n = w.numIters();
    if (xc.maxIters > 0 && xc.maxIters < n)
        n = xc.maxIters;
    return n;
}

int
LoopExecutor::activeProcs() const
{
    return xc.mode == ExecMode::Serial ? 1 : cfg.numProcs;
}

const Region *
LoopExecutor::sharedRegion(int decl_idx) const
{
    return setups.at(decl_idx).shared;
}

void
LoopExecutor::record(NodeId proc, IterNum iter, int array_id,
                     uint64_t elem, bool is_write, bool is_reduction)
{
    if (traceEnabled)
        trace.push_back(
            {proc, iter, elem, is_write, array_id, is_reduction});
}

void
LoopExecutor::allocateArrays()
{
    AddrMap &mem = dsm->memory();
    Placement pl = xc.mode == ExecMode::Serial ? Placement::Fixed
                                               : Placement::RoundRobin;
    bool parallel_tested =
        xc.mode == ExecMode::SW || xc.mode == ExecMode::HW;

    std::vector<ArrayDecl> decls = w.arrays();
    setups.clear();
    setups.reserve(decls.size());

    for (size_t i = 0; i < decls.size(); ++i) {
        const ArrayDecl &d = decls[i];
        ArraySetup s;
        s.decl = d;
        s.declIdx = static_cast<int>(i);
        s.effTest = d.test;
        if (xc.downgradePrivToNonPriv && d.test == TestType::Priv)
            s.effTest = TestType::NonPriv;
        s.privatized = (s.effTest == TestType::Priv ||
                        s.effTest == TestType::Reduction) &&
                       xc.mode != ExecMode::Serial;
        // Reduction arrays' shared copies stay untouched until the
        // final merge, so they never need a backup either.
        s.needsBackup = parallel_tested && d.modified && !s.privatized;

        uint64_t bytes = d.elems * d.elemBytes;
        int id = mem.alloc(d.name, bytes, d.elemBytes, pl, 0);
        s.shared = &mem.region(id);

        if (s.privatized) {
            for (int p = 0; p < activeProcs(); ++p) {
                int pid = mem.alloc(d.name + "_priv" + std::to_string(p),
                                    bytes, d.elemBytes, Placement::Fixed,
                                    p);
                s.privCopies.push_back(&mem.region(pid));
            }
        }
        if (s.needsBackup) {
            int bid = mem.alloc(d.name + "_bak", bytes, d.elemBytes, pl,
                                0);
            s.backup = &mem.region(bid);
        }

        if (xc.mode == ExecMode::SW &&
            (s.effTest == TestType::NonPriv ||
             s.effTest == TestType::Priv)) {
            bool pw = xc.swProcWise;
            // Iteration-wise shadows hold iteration numbers (2
            // bytes supports 2^16 iterations, as in the paper);
            // processor-wise shadows are bit-packed.
            uint64_t sh_elems = pw ? (d.elems + 7) / 8 : d.elems;
            uint32_t sh_eb = pw ? 1 : 2;
            uint64_t sh_bytes = sh_elems * sh_eb;
            auto sh_alloc = [&](const std::string &suffix, Placement spl,
                                NodeId node) {
                int sid = mem.alloc(d.name + suffix, sh_bytes, sh_eb,
                                    spl, node);
                return &mem.region(sid);
            };
            bool read_in = xc.swReadIn && !pw && s.privatized;
            for (int p = 0; p < activeProcs(); ++p) {
                std::string ps = std::to_string(p);
                s.shAw.push_back(
                    sh_alloc("_shw" + ps, Placement::Fixed, p));
                s.shAr.push_back(
                    sh_alloc("_shr" + ps, Placement::Fixed, p));
                if (s.privatized)
                    s.shAnp.push_back(
                        sh_alloc("_shnp" + ps, Placement::Fixed, p));
                if (read_in)
                    s.shAwmin.push_back(
                        sh_alloc("_shwm" + ps, Placement::Fixed, p));
            }
            s.glAw = sh_alloc("_glw", Placement::RoundRobin, 0);
            s.glAr = sh_alloc("_glr", Placement::RoundRobin, 0);
            if (s.privatized)
                s.glAnp = sh_alloc("_glnp", Placement::RoundRobin, 0);
            if (read_in)
                s.glAwmin =
                    sh_alloc("_glwm", Placement::RoundRobin, 0);
        }

        setups.push_back(std::move(s));
    }
}

void
LoopExecutor::buildLoopBindings()
{
    loopBindings.assign(cfg.numProcs, {});
    instrMap.clear();

    for (int p = 0; p < cfg.numProcs; ++p) {
        std::vector<ArrayBinding> &table = loopBindings[p];
        for (const ArraySetup &s : setups) {
            ArrayBinding b;
            b.region = s.privatized && p < static_cast<int>(
                                               s.privCopies.size())
                           ? s.privCopies[p]
                           : s.shared;
            b.traced = (s.effTest != TestType::None ||
                        xc.traceAllArrays) &&
                       xc.mode != ExecMode::Serial;
            b.traceArrayId = s.declIdx;
            b.reductionOnly = s.effTest == TestType::Reduction &&
                              s.privatized;
            table.push_back(b);
        }
    }

    if (xc.mode != ExecMode::SW)
        return;

    // Append per-processor shadow bindings and record the
    // instrumentation layout (identical across processors).
    // Reduction arrays have no shadows: the compiler knows which
    // accesses sit inside the reduction statement.
    for (const ArraySetup &s : setups) {
        if (s.effTest != TestType::NonPriv &&
            s.effTest != TestType::Priv)
            continue;
        InstrumentInfo info;
        info.procWise = xc.swProcWise;
        info.privatized = s.privatized;
        bool read_in = !s.shAwmin.empty();
        int base = static_cast<int>(loopBindings[0].size());
        info.shadows.aw = base;
        info.shadows.ar = base + 1;
        int next = base + 2;
        if (s.privatized)
            info.shadows.anp = next++;
        if (read_in)
            info.shadows.awmin = next++;
        instrMap[s.declIdx] = info;

        for (int p = 0; p < cfg.numProcs; ++p) {
            int q = std::min(p, activeProcs() - 1);
            loopBindings[p].push_back({s.shAw[q], false, -1});
            loopBindings[p].push_back({s.shAr[q], false, -1});
            if (s.privatized)
                loopBindings[p].push_back({s.shAnp[q], false, -1});
            if (read_in)
                loopBindings[p].push_back({s.shAwmin[q], false, -1});
        }
    }
}

void
LoopExecutor::loadTranslationTable()
{
    if (!spec)
        return;
    TranslationTable &table = spec->table();
    table.clear();
    for (const ArraySetup &s : setups) {
        if (s.effTest == TestType::NonPriv) {
            table.addNonPriv(*s.shared);
        } else if (s.effTest == TestType::Priv && s.privatized) {
            table.addPriv(*s.shared, s.privCopies);
        }
        // Reduction arrays need no coherence extension: the
        // tagged-access check guards them at the processors.
    }
}

void
LoopExecutor::setup()
{
    cfg.validate();
    dsm = std::make_unique<DsmSystem>(cfg);
    if (xc.mode == ExecMode::HW)
        spec = std::make_unique<SpecSystem>(*dsm);

    checker.reset();
    deliveryChecksActive = false;
    deliveryViolations = 0;
    if (xc.checkInvariants) {
        checker = std::make_unique<InvariantChecker>(*dsm);
        if (spec)
            checker->setSpecSystem(spec.get());
        checker->newRun();
        if (xc.invariantGranularity ==
            InvariantChecker::Granularity::Delivery) {
            dsm->eventQueue().setPostFireHook(
                [this](Tick, EventKind k) {
                    if (deliveryChecksActive &&
                        k == EventKind::Network)
                        deliveryViolations += checker->checkAll(
                            InvariantChecker::Granularity::Delivery);
                });
        }
    }

    infraAborted = false;
    infraAbortReason.clear();
    dsm->setTxnLostHook([this](const char *what) {
        if (!infraAborted) {
            infraAborted = true;
            infraAbortReason =
                std::string(what) + " exhausted its retry budget";
        }
        dsm->eventQueue().stop();
    });

    procs.clear();
    for (NodeId n = 0; n < cfg.numProcs; ++n) {
        procs.push_back(std::make_unique<Processor>(
            n, dsm->eventQueue(), dsm->cacheCtrl(n), cfg));
        procs.back()->setTraceSink(this);
    }

    allocateArrays();

    std::vector<const Region *> shared;
    for (const ArraySetup &s : setups)
        shared.push_back(s.shared);
    w.initData(dsm->memory(), shared);

    // Initialize private copies from the shared contents (models
    // copy-in; the hardware scheme's read-in cost is charged by the
    // protocol itself, see DESIGN.md). Reduction accumulators stay
    // at the identity (zero).
    for (const ArraySetup &s : setups) {
        if (s.effTest == TestType::Reduction)
            continue;
        for (const Region *c : s.privCopies)
            dsm->memory().copyBytes(s.shared->base, c->base,
                                    s.decl.elems * s.decl.elemBytes);
    }

    buildLoopBindings();
    loadTranslationTable();

    specAborted = false;
    if (spec) {
        spec->setAbortHook([this]() {
            specAborted = true;
            dsm->eventQueue().stop();
        });
        // The tagged-access check for reduction arrays fails the
        // speculation like any coherence-detected dependence.
        for (auto &p : procs) {
            p->setViolationHook([this](NodeId n, Addr a) {
                spec->fail(n, a,
                           "non-reduction access to an array under "
                           "the reduction test");
            });
        }
    }
}

void
LoopExecutor::resetProcStats()
{
    for (auto &p : procs)
        p->resetPhaseStats();
}

void
LoopExecutor::accumulate(BreakdownAgg &agg)
{
    for (auto &p : procs) {
        agg.busy += p->busyCycles();
        agg.sync += p->syncCycles();
        agg.mem += p->memCycles();
    }
}

void
LoopExecutor::settleStall(Tick dur, stall::Cause residual)
{
    if (!stallEng || dur == 0)
        return;
    std::vector<double> busy_d(procs.size(), 0.0);
    for (size_t p = 0; p < procs.size(); ++p)
        busy_d[p] = procs[p]->busyCycles();
    stallEng->settlePhase(static_cast<double>(dur), busy_d, residual);
}

std::pair<Tick, bool>
LoopExecutor::runLoopPhase()
{
    EventQueue &eq = dsm->eventQueue();
    Tick phase_start = eq.curTick();
    int n_procs = activeProcs();
    resetProcStats();

    struct DeliveryCheckGuard
    {
        bool *flag;
        ~DeliveryCheckGuard() { *flag = false; }
    } delivery_guard{&deliveryChecksActive};
    deliveryChecksActive =
        checker && xc.invariantGranularity ==
                       InvariantChecker::Granularity::Delivery;

    SchedPolicy pol = xc.sched;
    if (xc.mode == ExecMode::Serial)
        pol = SchedPolicy::StaticChunk;
    if (xc.mode == ExecMode::SW && xc.swProcWise)
        pol = SchedPolicy::StaticChunk; // the proc-wise constraint

    bool any_priv = false;
    for (const ArraySetup &s : setups)
        any_priv |= s.privatized;
    bool drain = xc.mode == ExecMode::HW && any_priv;

    Processor::IterGen gen;
    if (xc.mode == ExecMode::SW) {
        gen = [this](IterNum i, IterProgram &out) {
            IterProgram body;
            w.genIteration(i, body);
            lrpdInstrument(body, out, i, instrMap);
        };
    } else {
        gen = [this](IterNum i, IterProgram &out) {
            w.genIteration(i, out);
        };
    }

    traceEnabled = xc.mode == ExecMode::SW || xc.mode == ExecMode::HW ||
                   xc.keepTrace;

    // Fault injection targets the loop phase only (the recovery
    // machinery under test guards speculative execution; utility
    // phases and the serial baseline run fault-free).
    FaultPlan &plan = dsm->faultPlan();
    bool inject = plan.config().anyFaults() &&
                  xc.mode != ExecMode::Serial;
    struct PlanGuard
    {
        FaultPlan *p;
        ~PlanGuard()
        {
            if (p)
                p->disarm();
        }
    } plan_guard{inject ? &plan : nullptr};
    if (inject)
        plan.arm();

    // Time-stamp epochs: with tsBits set, a global barrier separates
    // every 2^tsBits iterations (section 3.3's periodic
    // synchronization for time-stamp overflow).
    IterNum total = numIters();
    IterNum epoch_len = total;
    if (xc.tsBits > 0 && xc.tsBits < 62)
        epoch_len = std::min<IterNum>(total, IterNum(1) << xc.tsBits);

    for (IterNum offset = 0; offset < total; offset += epoch_len) {
        IterNum count = std::min<IterNum>(epoch_len, total - offset);
        auto source = makeSource(pol, count, n_procs, xc.blockIters,
                                 cfg.schedLockCycles);
        ShiftedSource shifted(*source, offset);

        Tick epoch_start = eq.curTick();
        int done = 0;
        std::vector<Tick> done_tick(n_procs, epoch_start);
        for (int p = 0; p < n_procs; ++p) {
            procs[p]->setBindings(&loopBindings[p]);
            procs[p]->startPhase(&shifted, gen, drain,
                                 [&, p](NodeId) {
                                     done_tick[p] = eq.curTick();
                                     ++done;
                                 });
        }
        armSampler();
        eq.run();

        if (infraAborted) {
            traceEnabled = false;
            for (auto &p : procs)
                p->hardStop();
            accumulate(aggScratch);
            return {eq.curTick() - phase_start, false};
        }

        if (specAborted) {
            traceEnabled = false;
            for (auto &p : procs)
                p->hardStop();
            Tick fail_tick = spec->failure().tick;
            accumulate(aggScratch);
            return {fail_tick - phase_start, false};
        }

        SPECRT_ASSERT(done == n_procs,
                      "loop phase wedged: %d of %d processors done",
                      done, n_procs);

        if (n_procs > 1) {
            Tick end =
                *std::max_element(done_tick.begin(), done_tick.end());
            for (int p = 0; p < n_procs; ++p) {
                double sy = static_cast<double>(end - done_tick[p]) +
                            static_cast<double>(cfg.barrierCycles);
                procs[p]->addSyncCycles(sy);
                stall::charge(p, stall::Cause::Barrier, sy);
            }
            // Advance the time base past the barrier episode (the
            // queue may already have drained trailing acks beyond
            // it).
            eq.schedule(std::max(eq.curTick(),
                                 end + cfg.barrierCycles),
                        []() {});
            armSampler();
            eq.run();
        }
    }
    traceEnabled = false;
    accumulate(aggScratch);
    return {eq.curTick() - phase_start, true};
}

Tick
LoopExecutor::runProgramPhase(
    ProgramSet &programs,
    const std::vector<std::vector<ArrayBinding>> &bindings)
{
    EventQueue &eq = dsm->eventQueue();
    Tick start = eq.curTick();
    int n_procs = static_cast<int>(programs.size());
    resetProcStats();

    OneShotSource source(n_procs);
    // Each pseudo-iteration is granted exactly once (OneShotSource),
    // so the program can be moved out instead of copied.
    Processor::IterGen gen = [&programs](IterNum i, IterProgram &out) {
        out = std::move(programs.at(static_cast<size_t>(i - 1)));
    };

    int done = 0;
    std::vector<Tick> done_tick(n_procs, 0);
    for (int p = 0; p < n_procs; ++p) {
        procs[p]->setBindings(&bindings.at(p));
        procs[p]->startPhase(&source, gen, false, [&, p](NodeId) {
            done_tick[p] = eq.curTick();
            ++done;
        });
    }
    armSampler();
    eq.run();
    SPECRT_ASSERT(done == n_procs, "program phase wedged");

    Tick end = *std::max_element(done_tick.begin(), done_tick.end());
    Tick dur = end - start;
    if (n_procs > 1) {
        for (int p = 0; p < n_procs; ++p) {
            double sy = static_cast<double>(end - done_tick[p]) +
                        static_cast<double>(cfg.barrierCycles);
            procs[p]->addSyncCycles(sy);
            stall::charge(p, stall::Cause::Barrier, sy);
        }
        dur += cfg.barrierCycles;
    }
    accumulate(aggScratch);
    return dur;
}

Tick
LoopExecutor::runBackupPhase(bool restore_direction)
{
    // Binding layout: 2k = shared array, 2k+1 = backup of array k
    // (only arrays that need backup participate).
    std::vector<const ArraySetup *> backed;
    for (const ArraySetup &s : setups) {
        if (s.needsBackup)
            backed.push_back(&s);
    }
    if (backed.empty())
        return 0;

    int n_procs = activeProcs();
    std::vector<ArrayBinding> table;
    for (const ArraySetup *s : backed) {
        table.push_back({s->shared, false, -1});
        table.push_back({s->backup, false, -1});
    }
    std::vector<std::vector<ArrayBinding>> bindings(n_procs, table);

    ProgramSet programs(n_procs);
    for (int p = 0; p < n_procs; ++p) {
        for (size_t k = 0; k < backed.size(); ++k) {
            auto [lo, hi] = sliceOf(backed[k]->decl.elems, n_procs, p);
            int shared_id = static_cast<int>(2 * k);
            int backup_id = shared_id + 1;
            if (restore_direction)
                genCopyProgram(backup_id, shared_id, lo, hi,
                               programs[p]);
            else
                genCopyProgram(shared_id, backup_id, lo, hi,
                               programs[p]);
        }
    }
    return runProgramPhase(programs, bindings);
}

Tick
LoopExecutor::runZeroOutPhase()
{
    // Each processor zeroes its own private shadows.
    int n_procs = activeProcs();
    std::vector<std::vector<ArrayBinding>> bindings(n_procs);
    ProgramSet programs(n_procs);

    for (int p = 0; p < n_procs; ++p) {
        std::vector<int> ids;
        for (const ArraySetup &s : setups) {
            if (s.effTest != TestType::NonPriv &&
                s.effTest != TestType::Priv)
                continue;
            auto push = [&](const Region *r) {
                ids.push_back(static_cast<int>(bindings[p].size()));
                bindings[p].push_back({r, false, -1});
            };
            push(s.shAw[p]);
            push(s.shAr[p]);
            if (s.privatized)
                push(s.shAnp[p]);
            if (!s.shAwmin.empty())
                push(s.shAwmin[p]);
        }
        // All shadows of one array share an element count; zero each
        // array's shadows over its own range.
        size_t cursor = 0;
        for (const ArraySetup &s : setups) {
            if (s.effTest != TestType::NonPriv &&
                s.effTest != TestType::Priv)
                continue;
            size_t n_sh = (s.privatized ? 3u : 2u) +
                          (s.shAwmin.empty() ? 0u : 1u);
            std::vector<int> arr_ids(ids.begin() + cursor,
                                     ids.begin() + cursor + n_sh);
            cursor += n_sh;
            lrpdGenZeroOut(programs[p], arr_ids, 0,
                           s.shAw[p]->numElems());
        }
    }
    if (programs.empty())
        return 0;
    return runProgramPhase(programs, bindings);
}

Tick
LoopExecutor::runMergePhase()
{
    int n_procs = activeProcs();
    // One binding table shared by all processors: every private
    // shadow of every processor, then the globals.
    std::vector<ArrayBinding> table;
    struct Kinds
    {
        const ArraySetup *s;
        std::vector<MergeKind> kinds;
    };
    std::vector<Kinds> all;

    for (const ArraySetup &s : setups) {
        if (s.effTest != TestType::NonPriv &&
            s.effTest != TestType::Priv)
            continue;
        Kinds k;
        k.s = &s;
        auto add_kind = [&](const std::vector<const Region *> &per_proc,
                            const Region *global) {
            MergeKind mk;
            for (int p = 0; p < n_procs; ++p) {
                mk.perProcIds.push_back(
                    static_cast<int>(table.size()));
                table.push_back({per_proc[p], false, -1});
            }
            mk.globalId = static_cast<int>(table.size());
            table.push_back({global, false, -1});
            k.kinds.push_back(mk);
        };
        add_kind(s.shAw, s.glAw);
        add_kind(s.shAr, s.glAr);
        if (s.privatized)
            add_kind(s.shAnp, s.glAnp);
        if (!s.shAwmin.empty())
            add_kind(s.shAwmin, s.glAwmin);
        all.push_back(std::move(k));
    }
    if (all.empty())
        return 0;

    std::vector<std::vector<ArrayBinding>> bindings(n_procs, table);
    ProgramSet programs(n_procs);
    for (int p = 0; p < n_procs; ++p) {
        for (const Kinds &k : all) {
            auto [lo, hi] =
                sliceOf(k.s->glAw->numElems(), n_procs, p);
            lrpdGenMerge(programs[p], k.kinds, lo, hi);
        }
    }
    return runProgramPhase(programs, bindings);
}

Tick
LoopExecutor::runAnalysisPhase()
{
    int n_procs = activeProcs();
    std::vector<ArrayBinding> table;
    struct Entry
    {
        const ArraySetup *s;
        std::vector<int> ids;
    };
    std::vector<Entry> all;

    for (const ArraySetup &s : setups) {
        if (s.effTest != TestType::NonPriv &&
            s.effTest != TestType::Priv)
            continue;
        Entry e;
        e.s = &s;
        auto push = [&](const Region *r) {
            e.ids.push_back(static_cast<int>(table.size()));
            table.push_back({r, false, -1});
        };
        push(s.glAw);
        push(s.glAr);
        if (s.privatized)
            push(s.glAnp);
        if (s.glAwmin)
            push(s.glAwmin);
        all.push_back(std::move(e));
    }
    if (all.empty())
        return 0;

    std::vector<std::vector<ArrayBinding>> bindings(n_procs, table);
    ProgramSet programs(n_procs);
    for (int p = 0; p < n_procs; ++p) {
        for (const Entry &e : all) {
            auto [lo, hi] =
                sliceOf(e.s->glAw->numElems(), n_procs, p);
            lrpdGenAnalysis(programs[p], e.ids, lo, hi);
        }
    }
    return runProgramPhase(programs, bindings);
}

Tick
LoopExecutor::runCopyOutPhase()
{
    // Winners: for each privatized live-out array, the processor
    // whose write to an element had the highest iteration copies it
    // out (the software knows this from the Aw shadows / the
    // hardware from its PMaxW state; we recover it from the trace).
    std::vector<const ArraySetup *> live;
    for (const ArraySetup &s : setups) {
        // Reduction arrays merge through runReductionPhase instead.
        if (s.effTest == TestType::Priv && s.privatized &&
            s.decl.liveOut)
            live.push_back(&s);
    }
    if (live.empty())
        return 0;

    int n_procs = activeProcs();
    // winners[declIdx][elem] = (iter, proc)
    std::map<int, std::map<uint64_t, std::pair<IterNum, NodeId>>> win;
    for (const AccessEvent &ev : trace) {
        if (!ev.isWrite)
            continue;
        auto &m = win[ev.arrayId];
        auto it = m.find(ev.elem);
        if (it == m.end() || ev.iter > it->second.first)
            m[ev.elem] = {ev.iter, ev.proc};
    }

    std::vector<std::vector<ArrayBinding>> bindings(n_procs);
    ProgramSet programs(n_procs);
    for (int p = 0; p < n_procs; ++p) {
        for (const ArraySetup *s : live) {
            int priv_id = static_cast<int>(bindings[p].size());
            bindings[p].push_back({s->privCopies[p], false, -1});
            int shared_id = priv_id + 1;
            bindings[p].push_back({s->shared, false, -1});
            auto it = win.find(s->declIdx);
            if (it == win.end())
                continue;
            for (const auto &[elem, who] : it->second) {
                if (who.second != p)
                    continue;
                programs[p].push_back(
                    opLoad(0, priv_id, static_cast<int64_t>(elem)));
                programs[p].push_back(
                    opStore(shared_id, static_cast<int64_t>(elem), 0));
            }
        }
    }
    return runProgramPhase(programs, bindings);
}

Tick
LoopExecutor::runReductionPhase()
{
    // Merge the per-processor partial accumulators into the shared
    // arrays: shared(e) op= sum of partials(e). Element-partitioned,
    // real loads/stores (like the copy-out phase).
    std::vector<const ArraySetup *> red;
    for (const ArraySetup &s : setups) {
        if (s.effTest == TestType::Reduction && s.privatized)
            red.push_back(&s);
    }
    if (red.empty())
        return 0;

    int n_procs = activeProcs();
    std::vector<ArrayBinding> table;
    struct Layout
    {
        const ArraySetup *s;
        int sharedId;
        std::vector<int> partialIds;
    };
    std::vector<Layout> layouts;
    for (const ArraySetup *s : red) {
        Layout l;
        l.s = s;
        l.sharedId = static_cast<int>(table.size());
        table.push_back({s->shared, false, -1, false});
        for (int p = 0; p < n_procs; ++p) {
            l.partialIds.push_back(static_cast<int>(table.size()));
            table.push_back({s->privCopies[p], false, -1, false});
        }
        layouts.push_back(std::move(l));
    }

    std::vector<std::vector<ArrayBinding>> bindings(n_procs, table);
    ProgramSet programs(n_procs);
    for (int p = 0; p < n_procs; ++p) {
        for (const Layout &l : layouts) {
            auto [lo, hi] = sliceOf(l.s->decl.elems, n_procs, p);
            for (uint64_t e = lo; e < hi; ++e) {
                auto idx =
                    IndexOperand::immediate(static_cast<int64_t>(e));
                programs[p].push_back(opLoad(1, l.sharedId, idx));
                for (int q = 0; q < n_procs; ++q) {
                    programs[p].push_back(
                        opLoad(2, l.partialIds[q], idx));
                    programs[p].push_back(
                        opAlu(1, AluOp::Add, 1, 2));
                }
                programs[p].push_back(opStore(l.sharedId, idx, 1));
            }
        }
    }
    return runProgramPhase(programs, bindings);
}

Tick
LoopExecutor::runSerialPhase()
{
    // Serial re-execution on processor 0, arrays in shared form.
    std::vector<ArrayBinding> table;
    for (const ArraySetup &s : setups)
        table.push_back({s.shared, false, -1});
    std::vector<std::vector<ArrayBinding>> bindings(1, table);

    EventQueue &eq = dsm->eventQueue();
    Tick start = eq.curTick();
    resetProcStats();

    StaticChunkSource source(numIters(), 1);
    Processor::IterGen gen = [this](IterNum i, IterProgram &out) {
        w.genIteration(i, out);
    };

    bool finished = false;
    procs[0]->setBindings(&bindings[0]);
    procs[0]->startPhase(&source, gen, false,
                         [&finished](NodeId) { finished = true; });
    armSampler();
    eq.run();
    SPECRT_ASSERT(finished, "serial phase wedged");
    accumulate(aggScratch);
    return eq.curTick() - start;
}

void
LoopExecutor::initSampler()
{
    if (!timeline::enabled())
        return;
    tlSampler =
        std::make_unique<timeline::RunSampler>(dsm->eventQueue());

    // Live gauges: instantaneous machine state at each sampling
    // point. The lambdas capture raw pointers into the executor's
    // machine, which outlives the sampler (member order).
    Network *net = &dsm->network();
    tlSampler->addGauge("net.in_flight", [net]() {
        return static_cast<double>(net->numInFlight());
    });
    // Watchdog retransmits otherwise tick invisibly: a run stuck in
    // retry/backoff shows empty in_flight windows with no cause.
    tlSampler->addGauge("net.retries_pending", [net]() {
        return static_cast<double>(net->numPendingRetransmits());
    });
    DsmSystem *d = dsm.get();
    int n = d->numProcs();
    tlSampler->addGauge("dir.active_txns", [d, n]() {
        size_t sum = 0;
        for (int i = 0; i < n; ++i)
            sum += d->dirCtrl(i).numActiveTxns();
        return static_cast<double>(sum);
    });
    tlSampler->addGauge("dir.queued_reqs", [d, n]() {
        size_t sum = 0;
        for (int i = 0; i < n; ++i)
            sum += d->dirCtrl(i).numQueuedReqs();
        return static_cast<double>(sum);
    });
    tlSampler->addGauge("dir.max_queue", [d, n]() {
        size_t mx = 0;
        for (int i = 0; i < n; ++i)
            mx = std::max(mx, d->dirCtrl(i).numQueuedReqs());
        return static_cast<double>(mx);
    });
    auto *pv = &procs;
    tlSampler->addGauge("spec.outstanding_iters", [pv]() {
        uint64_t sum = 0;
        for (const auto &p : *pv)
            sum += p->outstandingIters();
        return static_cast<double>(sum);
    });

    // Per-interval deltas of the machine's stat tree (network,
    // caches, directories) and, in HW mode, the spec hardware's.
    tlSampler->addStatDelta(*dsm);
    if (spec)
        tlSampler->addStatDelta(*spec);
    // With the profiler on, the timeline gains delta.stall.* series
    // for free (the PR-5 delta machinery).
    if (stallEng)
        tlSampler->addStatDelta(*stallEng);
}

RunResult
LoopExecutor::run()
{
    setup();
    // Protocol tracing: the config knob wins, the environment
    // (SPECRT_TRACE) can switch it on for any driver that never
    // touches cfg.trace. Neither affects modeled timing. The metric
    // timeline follows the same contract (SPECRT_TIMELINE), as does
    // the critical-path profiler (SPECRT_CRITPATH).
    trace::applyConfig(cfg.trace);
    trace::maybeEnableFromEnv();
    timeline::applyConfig(cfg.timeline);
    timeline::maybeEnableFromEnv();
    critpath::applyConfig(cfg.critpath);
    critpath::maybeEnableFromEnv();
    obs::maybeEnableFromEnv();
    {
        // Publish the machine fingerprint so campaign outcomes can
        // name the exact config a failed job ran (replayability).
        char fp[32];
        std::snprintf(fp, sizeof(fp), "%016" PRIx64,
                      cfg.fingerprint());
        SimContext::current().configFingerprint = fp;
    }
    if (stallEng && stall::current() == stallEng.get())
        stall::install(nullptr);
    stallEng.reset();
    if (critpath::enabled()) {
        stallEng = std::make_unique<stall::Engine>(cfg.numProcs);
        stallEng->attachRecorder(&critpath::current());
        stall::install(stallEng.get());
    }
    initSampler();
    beginTraceLoop(dsm->eventQueue().curTick(), execModeName(xc.mode),
                   numIters());
    obs::runBegin(dsm->eventQueue().curTick(), execModeName(xc.mode),
                  numIters(), cfg.numProcs);

    RunResult res;
    res.mode = xc.mode;
    aggScratch = BreakdownAgg{};

    // Fill res.cost from the engine and feed the run's totals to the
    // critical-path recorder (once every phase has been settled).
    auto fill_cost = [this](RunResult &r) {
        if (!stallEng)
            return;
        r.cost.valid = true;
        r.cost.numProcs = cfg.numProcs;
        r.cost.perNodeTicks = static_cast<double>(r.totalTicks);
        for (int n = 0; n < cfg.numProcs; ++n)
            r.cost.busy += stallEng->busyOf(n);
        for (size_t c = 0; c < stall::numCauses; ++c)
            r.cost.stalls[c] =
                stallEng->causeTotal(static_cast<stall::Cause>(c));
        if (critpath::enabled())
            critpath::current().addRunTotals(
                r.cost.busy, r.cost.stalls, r.cost.perNodeTicks,
                cfg.numProcs);
    };

    bool is_sw = xc.mode == ExecMode::SW;
    bool is_hw = xc.mode == ExecMode::HW;

    if (is_sw) {
        res.phases.zeroOut = runZeroOutPhase();
        settleStall(res.phases.zeroOut, stall::Cause::CommitSerial);
    }
    if (is_sw || is_hw) {
        res.phases.backup = runBackupPhase(false);
        settleStall(res.phases.backup, stall::Cause::CommitSerial);
        traceMark(trace::TraceOp::Checkpoint,
                  dsm->eventQueue().curTick(), "backup of shared arrays");
        obs::checkpointMark(dsm->eventQueue().curTick(),
                            "backup of shared arrays");
        if (res.phases.backup > 0)
            dsm->resetMachine(true); // commit backup; cold caches for
                                     // the loop, as the paper does
    }

    if (is_hw)
        spec->arm();

    auto [loop_ticks, completed] = runLoopPhase();
    res.phases.loop = loop_ticks;
    settleStall(res.phases.loop, stall::Cause::Other);
    for (auto &p : procs)
        res.itersExecuted += p->itersExecuted();

    if (infraAborted) {
        // Fault injection defeated the retry machinery: the run
        // produced nothing usable. Discard the machine state and
        // report; runWithDegradation retries or degrades.
        res.infraFailed = true;
        res.infraReason = infraAbortReason;
        res.passed = false;
        res.invariantViolations += deliveryViolations;
        if (is_hw)
            spec->disarm();
        finishSampler();
        dsm->resetMachine(false);
        res.totalTicks = res.phases.total();
        res.agg = aggScratch;
        res.eventsFired = dsm->eventQueue().numFiredTotal();
        fill_cost(res);
        traceMark(trace::TraceOp::LoopEnd, dsm->eventQueue().curTick(),
                  "infra abort");
        obs::runEnd(dsm->eventQueue().curTick(), execModeName(xc.mode),
                    false, true, res.totalTicks, res.itersExecuted);
        return res;
    }

    if (checker && completed)
        res.invariantViolations += checker->checkAll();

    bool failed = false;
    if (is_hw) {
        res.hwFailure = spec->failure();
        failed = res.hwFailure.failed;
        if (failed)
            dsm->resetMachine(false); // discard speculative state
        spec->disarm();
    } else {
        SPECRT_ASSERT(completed, "non-HW loop phase aborted");
    }

    if (is_sw) {
        res.phases.merge = runMergePhase();
        settleStall(res.phases.merge, stall::Cause::CommitSerial);
        res.phases.analysis = runAnalysisPhase();
        settleStall(res.phases.analysis, stall::Cause::CommitSerial);
        for (const ArraySetup &s : setups) {
            if (s.effTest == TestType::None)
                continue;
            std::vector<AccessEvent> sub;
            for (const AccessEvent &ev : trace) {
                if (ev.arrayId == s.declIdx)
                    sub.push_back(ev);
            }
            if (s.effTest == TestType::Reduction) {
                // The software reduction test: the array may only be
                // touched from the reduction statement.
                failed |= !Oracle::reductionValid(sub);
                continue;
            }
            bool read_in =
                xc.swReadIn && !xc.swProcWise && s.privatized;
            LrpdAnalysis a =
                LrpdTest::run(sub, s.decl.elems, activeProcs(),
                              s.privatized, xc.swProcWise, read_in);
            bool ok = a.verdict == LrpdVerdict::Doall ||
                      (a.verdict == LrpdVerdict::DoallWithPriv &&
                       s.privatized);
            failed |= !ok;
            res.swAnalyses[s.declIdx] = a;
        }
    }

    res.passed = !failed;
    if (failed) {
        if (is_sw) {
            traceMark(trace::TraceOp::Abort,
                      dsm->eventQueue().curTick(),
                      "software LRPD test failed");
            obs::swAbort(dsm->eventQueue().curTick(),
                         "software LRPD test failed");
        }
        res.phases.restore = runBackupPhase(true);
        settleStall(res.phases.restore, stall::Cause::AbortRedo);
        res.phases.serial = runSerialPhase();
        settleStall(res.phases.serial, stall::Cause::AbortRedo);
    } else {
        if (is_sw || is_hw) {
            traceMark(trace::TraceOp::Commit,
                      dsm->eventQueue().curTick(),
                      "speculative state committed");
            obs::commitMark(dsm->eventQueue().curTick());
        }
        if (is_sw || is_hw) {
            res.phases.copyOut = runCopyOutPhase();
            settleStall(res.phases.copyOut,
                        stall::Cause::CommitSerial);
        }
        if (xc.mode != ExecMode::Serial) {
            res.phases.reduction = runReductionPhase();
            settleStall(res.phases.reduction,
                        stall::Cause::CommitSerial);
        }
    }

    if (checker)
        res.invariantViolations += checker->checkAll();
    res.invariantViolations += deliveryViolations;

    // Final sample before the commit reset wipes the gauges' state.
    finishSampler();

    // Commit all cached state so the backing store holds the final
    // values (verification reads them there).
    dsm->resetMachine(true);

    res.totalTicks = res.phases.total();
    res.agg = aggScratch;
    res.eventsFired = dsm->eventQueue().numFiredTotal();
    fill_cost(res);
    traceMark(trace::TraceOp::LoopEnd, dsm->eventQueue().curTick(),
              res.passed ? "passed" : "failed");
    obs::runEnd(dsm->eventQueue().curTick(), execModeName(xc.mode),
                res.passed, false, res.totalTicks, res.itersExecuted);
    if (xc.keepTrace)
        res.trace = std::move(trace);
    return res;
}

LadderOutcome
runWithDegradation(const MachineConfig &config, Workload &w,
                   ExecConfig xc, const DegradationPolicy &policy,
                   DegradationLog *log)
{
    LadderOutcome out;
    MachineConfig cfg = config;

    auto attempt = [&](ExecMode mode) {
        xc.mode = mode;
        out.exec = std::make_unique<LoopExecutor>(cfg, w, xc);
        out.result = out.exec->run();
        out.steps.push_back({mode, out.result.infraFailed,
                             out.result.passed,
                             out.result.infraReason});
        return !out.result.infraFailed;
    };

    ExecMode mode = xc.mode;
    while (true) {
        int attempts = 1;
        if (mode == ExecMode::HW)
            attempts = std::max(1, policy.maxHwAttempts);
        else if (mode != ExecMode::Serial)
            attempts = std::max(1, policy.maxSwAttempts);
        if (mode == ExecMode::Serial)
            cfg.fault = FaultConfig{}; // the floor runs fault-free

        for (int i = 0; i < attempts; ++i) {
            if (!out.steps.empty() && policy.reseedPerAttempt)
                cfg.fault.seed += 0x9e3779b97f4a7c15ULL;
            if (attempt(mode))
                return out;
        }

        SPECRT_ASSERT(mode != ExecMode::Serial,
                      "fault-free serial floor infra-failed");
        ExecMode to =
            mode == ExecMode::HW ? ExecMode::SW : ExecMode::Serial;
        ++out.degradations;
        if (log)
            log->record(mode, to, out.result.infraReason);
        obs::degrade(execModeName(mode), execModeName(to),
                     out.result.infraReason);
        mode = to;
    }
}

} // namespace specrt
