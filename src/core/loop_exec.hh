/**
 * @file
 * The speculative loop executor: runs one workload on one modeled
 * machine under one of four execution modes:
 *
 *  - Serial: uniprocessor execution, all data local (the paper's
 *    normalization baseline);
 *  - Ideal:  doall execution with no correctness tests (scheduling
 *    overhead and load imbalance included);
 *  - SW:     the software LRPD scheme -- backup, shadow zero-out,
 *    instrumented marking, merge + analysis phases; on failure,
 *    restore + serial re-execution after loop completion;
 *  - HW:     the paper's hardware scheme -- backup, arm the
 *    coherence-protocol extensions, run the doall; a detected
 *    dependence aborts immediately, restores, and re-executes
 *    serially.
 *
 * The executor owns the machine: each run is performed on a freshly
 * constructed DsmSystem.
 */

#ifndef SPECRT_CORE_LOOP_EXEC_HH
#define SPECRT_CORE_LOOP_EXEC_HH

#include <map>
#include <memory>
#include <vector>

#include "core/advisor.hh"
#include "lrpd/lrpd.hh"
#include "lrpd/lrpd_codegen.hh"
#include "mem/dsm.hh"
#include "mem/invariants.hh"
#include "runtime/checkpoint.hh"
#include "runtime/processor.hh"
#include "runtime/scheduler.hh"
#include "runtime/workload.hh"
#include "sim/stall.hh"
#include "sim/timeline.hh"
#include "spec/spec_unit.hh"

namespace specrt
{

/** Execution scenario (paper section 6). */
enum class ExecMode
{
    Serial,
    Ideal,
    SW,
    HW,
};

const char *execModeName(ExecMode m);

/** Per-run configuration. */
struct ExecConfig
{
    ExecMode mode = ExecMode::HW;
    SchedPolicy sched = SchedPolicy::Dynamic;
    /** Iterations per scheduling block (BlockCyclic / Dynamic). */
    IterNum blockIters = 4;
    /** SW: processor-wise test (bitmap shadows; forces StaticChunk). */
    bool swProcWise = false;
    /**
     * SW: the section 2.2.3 read-in extension (extra Awmin shadow,
     * iteration-wise only): accepts privatized loops whose elements
     * are read before any iteration writes them.
     */
    bool swReadIn = false;
    /**
     * Run arrays declared TestType::Priv under the non-privatization
     * algorithm instead (the paper's forced-failure scenarios).
     */
    bool downgradePrivToNonPriv = false;
    /** Cap on iterations (0 = run all); the paper simulates 15,000
     *  of P3m's 97,336 iterations. */
    IterNum maxIters = 0;
    /** Keep the access trace in the result (tests). */
    bool keepTrace = false;
    /**
     * Run the protocol invariant checker (mem/invariants.hh) at the
     * run's quiesce points and count violations into the result.
     */
    bool checkInvariants = false;
    /**
     * With checkInvariants: also run the Delivery-granularity passes
     * after every network delivery of the loop phase (the explorer
     * turns this on so every reachable state is checked). Expensive;
     * off by default.
     */
    InvariantChecker::Granularity invariantGranularity =
        InvariantChecker::Granularity::Quiesce;
    /** Trace every array, not just those under test (profiling for
     *  the test advisor). */
    bool traceAllArrays = false;
    /**
     * Width of the privatization time stamps in bits (0 =
     * unbounded). When the loop has more iterations than 2^tsBits,
     * the paper synchronizes all processors periodically so the
     * effective iteration numbers stored in the time stamps can be
     * reset (section 3.3). The simulator's state never overflows, so
     * this models the cost: a global barrier every 2^tsBits
     * iterations.
     */
    int tsBits = 0;
};

/** Simulated durations of each phase (cycles). */
struct PhaseTimes
{
    Tick zeroOut = 0;   ///< SW shadow zero-out
    Tick backup = 0;    ///< array backup
    Tick loop = 0;      ///< the (speculative) doall itself
    Tick merge = 0;     ///< SW shadow merge
    Tick analysis = 0;  ///< SW analysis
    Tick copyOut = 0;   ///< privatized live-out copy-out
    Tick reduction = 0; ///< reduction partial-accumulator merge
    Tick restore = 0;   ///< state restore after failure
    Tick serial = 0;    ///< serial re-execution after failure

    Tick
    total() const
    {
        return zeroOut + backup + loop + merge + analysis + copyOut +
               reduction + restore + serial;
    }
};

/** Busy/Sync/Mem totals summed over processors (Fig. 12 breakdown). */
struct BreakdownAgg
{
    double busy = 0;
    double sync = 0;
    double mem = 0;
};

/** Outcome of one run. */
struct RunResult
{
    ExecMode mode = ExecMode::Serial;
    /** The speculation test passed (always true for Serial/Ideal). */
    bool passed = true;
    PhaseTimes phases;
    Tick totalTicks = 0;
    BreakdownAgg agg;
    uint64_t itersExecuted = 0;
    /** Host-side cost proxy: events the engine fired for this run. */
    uint64_t eventsFired = 0;
    /**
     * The run died of an infrastructure fault (a transaction or
     * signal exhausted its retry budget under fault injection), NOT
     * of a detected dependence. The machine state was discarded; the
     * caller must retry or degrade (see runWithDegradation).
     */
    bool infraFailed = false;
    /** What was lost, when infraFailed. */
    std::string infraReason;
    /** Protocol invariant violations found (checkInvariants). */
    uint64_t invariantViolations = 0;
    /** HW: the latched failure, if any. */
    SpecFailure hwFailure;
    /** SW: the per-array verdicts (decl index -> analysis). */
    std::map<int, LrpdAnalysis> swAnalyses;
    /** Access trace of the loop phase (when keepTrace). */
    std::vector<AccessEvent> trace;
    /**
     * Where the cycles went (cfg.critpath.enabled or SPECRT_CRITPATH;
     * cost.valid == false otherwise). Every simulated tick of every
     * node is attributed: busy + sum(stalls) == numProcs *
     * totalTicks, exactly.
     */
    stall::CostBreakdown cost;
};

/** Executes one workload run. */
class LoopExecutor : public TraceSink
{
  public:
    LoopExecutor(const MachineConfig &config, Workload &workload,
                 const ExecConfig &exec_config);
    ~LoopExecutor() override;

    /** Run to completion and report. */
    RunResult run();

    /** The machine (inspectable after run()). */
    DsmSystem &machine() { return *dsm; }

    /** The speculation hardware (HW mode only; else null). */
    SpecSystem *specSystem() { return spec.get(); }

    /** The invariant checker (checkInvariants only; else null). */
    InvariantChecker *invariantChecker() { return checker.get(); }

    /**
     * The stall-attribution engine of the last run (critpath
     * profiling only; else null). Valid until the next run() or
     * destruction; tests read per-node totals off it.
     */
    stall::Engine *stallEngine() { return stallEng.get(); }

    /** Shared region of declaration @p decl_idx (after run()). */
    const Region *sharedRegion(int decl_idx) const;

    // TraceSink
    void record(NodeId proc, IterNum iter, int array_id, uint64_t elem,
                bool is_write, bool is_reduction) override;

  private:
    struct ArraySetup
    {
        ArrayDecl decl;
        int declIdx = -1;
        const Region *shared = nullptr;
        std::vector<const Region *> privCopies;
        const Region *backup = nullptr;
        std::vector<const Region *> shAw, shAr, shAnp, shAwmin;
        const Region *glAw = nullptr;
        const Region *glAr = nullptr;
        const Region *glAnp = nullptr;
        const Region *glAwmin = nullptr;
        /** Effective test in this run (after downgrade). */
        TestType effTest = TestType::None;
        /** Redirect accesses to private copies in this run. */
        bool privatized = false;
        bool needsBackup = false;
    };

    /** A per-proc program table for utility phases. */
    using ProgramSet = std::vector<IterProgram>;

    void setup();
    void allocateArrays();
    void buildLoopBindings();
    void loadTranslationTable();

    /** Run a utility phase where proc p executes programs[p].
     *  Consumes the programs (moved into the processors: utility
     *  programs run to hundreds of kilobytes of ops, and each is
     *  executed exactly once). */
    Tick runProgramPhase(ProgramSet &programs,
                         const std::vector<std::vector<ArrayBinding>>
                             &bindings);

    /** Run the loop phase; returns (duration, completed normally). */
    std::pair<Tick, bool> runLoopPhase();

    Tick runBackupPhase(bool restore_direction);
    Tick runZeroOutPhase();
    Tick runMergePhase();
    Tick runAnalysisPhase();
    Tick runCopyOutPhase();
    Tick runReductionPhase();
    Tick runSerialPhase();

    void accumulate(BreakdownAgg &agg);
    void resetProcStats();

    /**
     * Close one phase of the stall accounting: each node's busy
     * delta (its phase-scoped busy counter) is recorded and the
     * unattributed remainder charged to @p residual. No-op when the
     * profiler is off or the phase had zero length (a zero-length
     * phase never ran resetPhaseStats, so the proc counters still
     * belong to the previous phase).
     */
    void settleStall(Tick dur, stall::Cause residual);

    /** Create the timeline sampler (no-op when the timeline is off). */
    void initSampler();
    /** Re-arm the sampler before an event-queue drain leg. */
    void armSampler()
    {
        if (tlSampler)
            tlSampler->arm();
    }
    /** Final sample + stop sampling (idempotent). */
    void finishSampler()
    {
        if (tlSampler)
            tlSampler->finish();
    }

    IterNum numIters() const;
    int activeProcs() const;

    MachineConfig cfg;
    Workload &w;
    ExecConfig xc;

    std::unique_ptr<DsmSystem> dsm;
    std::unique_ptr<SpecSystem> spec;
    std::unique_ptr<InvariantChecker> checker;
    std::vector<std::unique_ptr<Processor>> procs;
    /**
     * Stall-attribution engine (critpath profiling only). Declared
     * after the machine (hooks fire while it runs) and before the
     * sampler, whose final sample reads the engine's stats.
     */
    std::unique_ptr<stall::Engine> stallEng;
    /**
     * Declared after the machine members: its gauges read them, and
     * its destructor (final sample) must run before they go away.
     */
    std::unique_ptr<timeline::RunSampler> tlSampler;

    std::vector<ArraySetup> setups;
    /** Loop-phase bindings, one table per proc. */
    std::vector<std::vector<ArrayBinding>> loopBindings;
    /** Instrumentation map for SW mode. */
    std::map<int, InstrumentInfo> instrMap;

    std::vector<AccessEvent> trace;
    bool traceEnabled = false;

    BreakdownAgg aggScratch;
    bool specAborted = false;
    bool infraAborted = false;
    std::string infraAbortReason;
    /** Per-delivery invariant checks run only inside the loop phase
     *  (utility phases quiesce between programs anyway). */
    bool deliveryChecksActive = false;
    uint64_t deliveryViolations = 0;
};

/** Retry/degradation budget of runWithDegradation. */
struct DegradationPolicy
{
    /** HW attempts (reseeding the fault schedule) before degrading
     *  to the software scheme. */
    int maxHwAttempts = 2;
    /** SW attempts before degrading to serial execution. */
    int maxSwAttempts = 1;
    /** Perturb the fault seed between attempts (a deterministic
     *  schedule would otherwise fail identically every retry). */
    bool reseedPerAttempt = true;
};

/** One rung of the degradation ladder, in execution order. */
struct DegradationStep
{
    ExecMode mode;
    bool infraFailed = false;
    bool passed = false;
    std::string reason;
};

/** What runWithDegradation did and produced. */
struct LadderOutcome
{
    /** Result of the final attempt (the one that did not infra-fail). */
    RunResult result;
    /** Executor of the final attempt (machine inspectable). */
    std::unique_ptr<LoopExecutor> exec;
    std::vector<DegradationStep> steps;
    /** Mode downgrades performed (0 = first tier succeeded). */
    int degradations = 0;
};

/**
 * Run @p w under @p xc.mode, degrading gracefully when fault
 * injection defeats the retry machinery: HW -> SW-LRPD -> Serial.
 * Each tier gets a bounded number of attempts (reseeded fault
 * schedules); the serial floor runs fault-free and cannot fail.
 * Degradations are recorded in @p log when given.
 */
LadderOutcome runWithDegradation(const MachineConfig &config,
                                 Workload &w, ExecConfig xc,
                                 const DegradationPolicy &policy = {},
                                 DegradationLog *log = nullptr);

} // namespace specrt

#endif // SPECRT_CORE_LOOP_EXEC_HH
