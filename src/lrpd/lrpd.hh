/**
 * @file
 * Reference implementation of the software LRPD test (paper
 * section 2.2, after Rauchwerger & Padua).
 *
 * This is the algorithmic software scheme itself: per-processor
 * private shadow arrays updated by an online marking phase, a merge
 * across processors, and the analysis phase computing the verdict.
 * The simulated cost of these operations is modeled separately by
 * lrpd_codegen.hh; the loop executor uses this class to obtain the
 * verdict while the generated code provides the timing.
 *
 * Marking is exact for the paper's definitions: a write in iteration
 * i cancels only an Ar mark made earlier in the same iteration
 * (shadow elements hold iteration numbers, so the cancellation never
 * destroys marks from older iterations -- this is why the paper
 * stores iteration numbers instead of single bits).
 */

#ifndef SPECRT_LRPD_LRPD_HH
#define SPECRT_LRPD_LRPD_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "spec/oracle.hh"

namespace specrt
{

/** Aggregate outcome of the analysis phase. */
struct LrpdAnalysis
{
    LrpdVerdict verdict = LrpdVerdict::NotParallel;
    uint64_t atw = 0;        ///< total (element, iteration) writes
    uint64_t atm = 0;        ///< elements with the write shadow set
    bool awAndAr = false;    ///< any(Aw & Ar)
    bool awAndAnp = false;   ///< any(Aw & Anp)
    /** Read-in variant: any element whose highest read-first
     *  iteration exceeds its lowest writing iteration (Awmin). */
    bool r1stAfterWmin = false;
};

/** The LRPD test over one array. */
class LrpdTest
{
  public:
    /**
     * @param elems      number of elements of the array under test
     * @param num_procs  processors participating
     * @param privatized the array is speculatively privatized (the
     *                   Anp shadow array participates in analysis)
     * @param read_in    the section 2.2.3 extension: an extra Awmin
     *                   shadow (lowest writing iteration) lets the
     *                   test accept loops whose privatized elements
     *                   are read before any iteration writes them
     *                   (read-in) -- the software counterpart of the
     *                   hardware MaxR1st/MinW test
     */
    LrpdTest(uint64_t elems, int num_procs, bool privatized,
             bool read_in = false);

    /** Marking: processor @p p reads element @p e in iteration @p it. */
    void markRead(int p, IterNum it, uint64_t e);

    /** Marking: processor @p p writes element @p e in iteration @p it. */
    void markWrite(int p, IterNum it, uint64_t e);

    /**
     * Merge the private shadows and run the analysis phase
     * (paper steps 2(a)-2(e)).
     */
    LrpdAnalysis analyze() const;

    /**
     * Convenience: run a whole trace through marking (iteration-wise
     * when @p proc_wise is false; the processor becomes the
     * super-iteration otherwise) and analyze.
     */
    static LrpdAnalysis run(const std::vector<AccessEvent> &trace,
                            uint64_t elems, int num_procs,
                            bool privatized, bool proc_wise,
                            bool read_in = false);

  private:
    struct Shadow
    {
        std::vector<IterNum> aw;   ///< last writing iteration (0=never)
        std::vector<IterNum> ar;   ///< Ar mark (iteration number)
        std::vector<uint8_t> anp;  ///< Anp mark
        /** Read-in variant: lowest writing iteration (0 = none). */
        std::vector<IterNum> awmin;
        /** Read-in variant: highest read-first iteration. */
        std::vector<IterNum> ar1st;
        uint64_t atw = 0;
    };

    uint64_t elems;
    bool privatized;
    bool readIn;
    std::vector<Shadow> shadows; ///< one per processor
};

} // namespace specrt

#endif // SPECRT_LRPD_LRPD_HH
