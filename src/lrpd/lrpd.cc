#include "lrpd/lrpd.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace specrt
{

LrpdTest::LrpdTest(uint64_t elems_, int num_procs, bool privatized_,
                   bool read_in)
    : elems(elems_), privatized(privatized_), readIn(read_in)
{
    SPECRT_ASSERT(num_procs > 0, "no processors");
    shadows.resize(num_procs);
    for (Shadow &s : shadows) {
        s.aw.assign(elems, 0);
        s.ar.assign(elems, 0);
        s.anp.assign(elems, 0);
        if (readIn) {
            s.awmin.assign(elems, 0);
            s.ar1st.assign(elems, 0);
        }
    }
}

void
LrpdTest::markRead(int p, IterNum it, uint64_t e)
{
    SPECRT_ASSERT(e < elems, "markRead out of range");
    Shadow &s = shadows.at(p);
    if (s.aw[e] == it)
        return; // written earlier in this iteration: fully covered
    if (s.ar[e] == 0)
        s.ar[e] = it;
    s.anp[e] = 1;
    if (readIn && it > s.ar1st[e])
        s.ar1st[e] = it; // highest read-first iteration
}

void
LrpdTest::markWrite(int p, IterNum it, uint64_t e)
{
    SPECRT_ASSERT(e < elems, "markWrite out of range");
    Shadow &s = shadows.at(p);
    if (s.ar[e] == it)
        s.ar[e] = 0; // cancel the tentative same-iteration Ar mark
    if (s.aw[e] != it) {
        s.aw[e] = it;
        ++s.atw; // one more distinct element written this iteration
    }
    if (readIn && (s.awmin[e] == 0 || it < s.awmin[e]))
        s.awmin[e] = it; // lowest writing iteration
}

LrpdAnalysis
LrpdTest::analyze() const
{
    LrpdAnalysis a;
    for (const Shadow &s : shadows)
        a.atw += s.atw;

    for (uint64_t e = 0; e < elems; ++e) {
        bool aw = false, ar = false, anp = false;
        IterNum ar1st_max = 0;
        IterNum awmin_min = 0;
        for (const Shadow &s : shadows) {
            aw |= s.aw[e] != 0;
            ar |= s.ar[e] != 0;
            anp |= s.anp[e] != 0;
            if (readIn) {
                ar1st_max = std::max(ar1st_max, s.ar1st[e]);
                if (s.awmin[e] != 0 &&
                    (awmin_min == 0 || s.awmin[e] < awmin_min))
                    awmin_min = s.awmin[e];
            }
        }
        if (aw)
            ++a.atm;
        a.awAndAr |= aw && ar;
        a.awAndAnp |= aw && anp;
        if (readIn && awmin_min != 0 && ar1st_max > awmin_min)
            a.r1stAfterWmin = true;
    }

    if (readIn && privatized) {
        // Section 2.2.3 condition: every read-first iteration of an
        // element precedes (or equals) every writing iteration.
        a.verdict = a.r1stAfterWmin ? LrpdVerdict::NotParallel
                    : a.atw == a.atm && !a.awAndAr
                        ? LrpdVerdict::Doall
                        : LrpdVerdict::DoallWithPriv;
        return a;
    }

    if (a.awAndAr)
        a.verdict = LrpdVerdict::NotParallel;
    else if (a.atw == a.atm)
        a.verdict = LrpdVerdict::Doall;
    else if (!privatized || a.awAndAnp)
        a.verdict = LrpdVerdict::NotParallel;
    else
        a.verdict = LrpdVerdict::DoallWithPriv;
    return a;
}

LrpdAnalysis
LrpdTest::run(const std::vector<AccessEvent> &trace, uint64_t elems,
              int num_procs, bool privatized, bool proc_wise,
              bool read_in)
{
    LrpdTest test(elems, num_procs, privatized, read_in);
    for (const AccessEvent &ev : trace) {
        IterNum key = proc_wise ? ev.proc + 1 : ev.iter;
        if (ev.isWrite)
            test.markWrite(ev.proc, key, ev.elem);
        else
            test.markRead(ev.proc, key, ev.elem);
    }
    return test.analyze();
}

} // namespace specrt
