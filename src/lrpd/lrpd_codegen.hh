/**
 * @file
 * Code generation for the software LRPD scheme's run-time cost.
 *
 * Polaris would compile marking, merging, and analysis instructions
 * into the loop; here we inject the equivalent micro-ISA ops so the
 * software scheme pays its overhead through the same simulated
 * memory system (extra instructions, extra misses, extra conflicts
 * -- the effects the paper measures in Figure 12).
 *
 * The semantic verdict comes from lrpd.hh / the access trace; the
 * generated shadow accesses model cost, touching real shadow memory
 * at the right addresses and with the right sharing pattern.
 *
 * Register convention: r27-r31 are reserved for instrumentation
 * (workload programs must keep to r0-r26).
 */

#ifndef SPECRT_LRPD_LRPD_CODEGEN_HH
#define SPECRT_LRPD_LRPD_CODEGEN_HH

#include <map>
#include <vector>

#include "runtime/isa.hh"
#include "sim/types.hh"

namespace specrt
{

/** Shadow-array binding ids for one tested array (-1 = absent). */
struct ShadowIds
{
    int aw = -1;
    int ar = -1;
    int anp = -1;
    /** Read-in variant's Awmin/Ar1st shadow (section 2.2.3). */
    int awmin = -1;
};

/** How to instrument accesses to one tested array. */
struct InstrumentInfo
{
    ShadowIds shadows;
    /** Processor-wise test: byte-packed bitmap shadows, indexed by
     *  element/8. */
    bool procWise = false;
    /** Privatized array: the Anp shadow is also marked. */
    bool privatized = false;
};

/**
 * Rewrite an iteration body, appending marking ops after every
 * access to a tested array.
 *
 * @param in        the original body
 * @param out       receives the instrumented body (appended)
 * @param iter      iteration number (stored into the shadows)
 * @param per_array instrumentation map keyed by arrayId
 */
void lrpdInstrument(const IterProgram &in, IterProgram &out,
                    IterNum iter,
                    const std::map<int, InstrumentInfo> &per_array);

/** One shadow kind to merge: every processor's private copy plus
 *  the global destination. */
struct MergeKind
{
    std::vector<int> perProcIds;
    int globalId = -1;
};

/**
 * Emit the merge-phase program for one processor: for each element
 * in [lo, hi), OR/aggregate every processor's private shadow value
 * into the global shadow. This is the part of the software scheme
 * whose per-processor work stays constant as processors are added
 * (the scalability limiter of section 6.3).
 */
void lrpdGenMerge(IterProgram &out, const std::vector<MergeKind> &kinds,
                  uint64_t lo, uint64_t hi);

/**
 * Emit the analysis-phase program for one processor: scan the global
 * shadows over [lo, hi) computing any(Aw & Ar), Atm, and (for
 * privatized arrays) any(Aw & Anp).
 */
void lrpdGenAnalysis(IterProgram &out, const std::vector<int> &global_ids,
                     uint64_t lo, uint64_t hi);

/**
 * Emit the zero-out program clearing a processor's private shadows
 * before the loop ("shadow array zero-out" of section 6.3).
 */
void lrpdGenZeroOut(IterProgram &out, const std::vector<int> &shadow_ids,
                    uint64_t lo, uint64_t hi);

} // namespace specrt

#endif // SPECRT_LRPD_LRPD_CODEGEN_HH
