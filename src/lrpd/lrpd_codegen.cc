#include "lrpd/lrpd_codegen.hh"

#include "sim/logging.hh"

namespace specrt
{

namespace
{

// Reserved instrumentation registers.
constexpr int regIter = 29;    ///< current iteration number
constexpr int regTmp = 30;     ///< shadow load shuttle
constexpr int regIdx = 28;     ///< bitmap index
constexpr int regThree = 27;   ///< shift amount 3

/** Index operand for a shadow access mirroring data index @p idx. */
IndexOperand
shadowIndex(const IndexOperand &idx, bool proc_wise, IterProgram &out)
{
    if (!proc_wise)
        return idx;
    if (!idx.isReg)
        return IndexOperand::immediate(idx.imm >> 3);
    out.push_back(opAlu(regIdx, AluOp::Shr, idx.reg, regThree));
    return IndexOperand::fromReg(regIdx);
}

void
markWriteOps(IterProgram &out, const InstrumentInfo &info,
             const IndexOperand &idx)
{
    IndexOperand s = shadowIndex(idx, info.procWise, out);
    out.push_back(opLoad(regTmp, info.shadows.aw, s));
    // Shadow index arithmetic, written-this-iteration compare,
    // branch, and Atw bookkeeping.
    out.push_back(opBusy(3));
    out.push_back(opStore(info.shadows.aw, s, regIter));
    if (info.shadows.awmin >= 0) {
        // Read-in variant: maintain the lowest writing iteration.
        out.push_back(opLoad(regTmp, info.shadows.awmin, s));
        out.push_back(opBusy(1));
        out.push_back(opStore(info.shadows.awmin, s, regIter));
    }
}

void
markReadOps(IterProgram &out, const InstrumentInfo &info,
            const IndexOperand &idx)
{
    IndexOperand s = shadowIndex(idx, info.procWise, out);
    out.push_back(opLoad(regTmp, info.shadows.aw, s));
    // Shadow index arithmetic + written-this-iteration check +
    // branches for the Ar/Anp marking decisions.
    out.push_back(opBusy(3));
    out.push_back(opStore(info.shadows.ar, s, regIter));
    if (info.privatized && info.shadows.anp >= 0)
        out.push_back(opStore(info.shadows.anp, s, regIter));
    if (info.shadows.awmin >= 0) {
        // Read-in variant: record the highest read-first iteration
        // (shares the Awmin shadow line budget: one more store).
        out.push_back(opStore(info.shadows.awmin, s, regIter));
    }
}

} // namespace

void
lrpdInstrument(const IterProgram &in, IterProgram &out, IterNum iter,
               const std::map<int, InstrumentInfo> &per_array)
{
    out.push_back(opImm(regIter, iter));
    out.push_back(opImm(regThree, 3));
    for (const Op &op : in) {
        out.push_back(op);
        if (op.arrayId < 0)
            continue;
        auto it = per_array.find(op.arrayId);
        if (it == per_array.end())
            continue;
        if (op.kind == OpKind::Store)
            markWriteOps(out, it->second, op.index);
        else if (op.kind == OpKind::Load)
            markReadOps(out, it->second, op.index);
    }
    // End-of-iteration Atw accumulation (register arithmetic).
    out.push_back(opBusy(2));
}

void
lrpdGenMerge(IterProgram &out, const std::vector<MergeKind> &kinds,
             uint64_t lo, uint64_t hi)
{
    size_t per_elem = 0;
    for (const MergeKind &kind : kinds)
        per_elem += 2 * kind.perProcIds.size() + 1;
    out.reserve(out.size() + (hi - lo) * per_elem);
    for (uint64_t e = lo; e < hi; ++e) {
        auto idx = IndexOperand::immediate(static_cast<int64_t>(e));
        for (const MergeKind &kind : kinds) {
            SPECRT_ASSERT(kind.globalId >= 0, "merge without target");
            for (int id : kind.perProcIds) {
                out.push_back(opLoad(regTmp, id, idx));
                out.push_back(opBusy(1)); // OR / max into accumulator
            }
            out.push_back(opStore(kind.globalId, idx, regTmp));
        }
    }
}

void
lrpdGenAnalysis(IterProgram &out, const std::vector<int> &global_ids,
                uint64_t lo, uint64_t hi)
{
    out.reserve(out.size() + (hi - lo) * (global_ids.size() + 1) + 1);
    for (uint64_t e = lo; e < hi; ++e) {
        auto idx = IndexOperand::immediate(static_cast<int64_t>(e));
        for (int id : global_ids)
            out.push_back(opLoad(regTmp, id, idx));
        out.push_back(opBusy(2)); // Aw&Ar, Aw&Anp, Atm accumulation
    }
    out.push_back(opBusy(20)); // final reduction bookkeeping
}

void
lrpdGenZeroOut(IterProgram &out, const std::vector<int> &shadow_ids,
               uint64_t lo, uint64_t hi)
{
    out.reserve(out.size() + (hi - lo) * shadow_ids.size() + 1);
    out.push_back(opImm(regTmp, 0));
    for (uint64_t e = lo; e < hi; ++e) {
        auto idx = IndexOperand::immediate(static_cast<int64_t>(e));
        for (int id : shadow_ids)
            out.push_back(opStore(id, idx, regTmp));
    }
}

} // namespace specrt
