/**
 * @file
 * Per-element speculation state ("access bits", paper Fig. 5) and
 * its wire encoding.
 *
 * A single set of hardware bits is used differently depending on the
 * algorithm applied to the array (non-privatization vs.
 * privatization), exactly as in the paper. The structs here are the
 * logical views; spec_unit.cc stores them beside the cache tags and
 * the directory ("Access Bit Array" / "Access Bit Table").
 *
 * Wire format (Msg::specBits, one uint32_t per element of a line):
 *
 *   non-privatization --
 *     bits [0:6]  First: 0 = NONE, 1..64 = node id + 1,
 *                 65 = set-but-only-the-home-knows-who (a cache's
 *                 tag.First == OTHER being shipped home; the home's
 *                 dir.First is guaranteed to already hold the id)
 *     bit  [7]    NoShr ("Priv" in the paper's Figs. 6-7)
 *     bit  [8]    ROnly
 *
 *   privatization --
 *     bit  [0]    Read1st (valid for the iteration in Msg::iter)
 *     bit  [1]    Write   (same)
 */

#ifndef SPECRT_SPEC_ACCESS_BITS_HH
#define SPECRT_SPEC_ACCESS_BITS_HH

#include <cstdint>
#include <limits>

#include "sim/types.hh"

namespace specrt
{

/** Sentinel: "no iteration has written yet" for MinW. */
constexpr IterNum iterInf = std::numeric_limits<IterNum>::max();

/** Cache-tag view of the First field (2 bits, paper section 3.2). */
enum class TagFirst : uint8_t
{
    None,
    Own,
    Other,
};

/** Non-privatization cache tag bits for one element. */
struct NPTagBits
{
    TagFirst first = TagFirst::None;
    bool noShr = false;
    bool rOnly = false;
};

/** Non-privatization directory bits for one element. */
struct NPDirBits
{
    NodeId first = invalidNode;  ///< full processor id (or none)
    bool noShr = false;
    bool rOnly = false;
};

/** Privatization cache tag bits for one element (per-iteration). */
struct PrivTagBits
{
    bool read1st = false;
    bool write = false;
    /** Iteration the bits are valid for (hardware clears each
     *  iteration; we tag instead of clearing). */
    IterNum iter = 0;
};

/** Privatization state at the directory of a PRIVATE copy. */
struct PrivPrivDirBits
{
    /** Highest read-first iteration by this processor (0 = none). */
    IterNum pMaxR1st = 0;
    /** Highest iteration by this processor that wrote (0 = none). */
    IterNum pMaxW = 0;

    bool untouched() const { return pMaxR1st == 0 && pMaxW == 0; }
};

/** Privatization state at the directory of the SHARED array. */
struct PrivSharedDirBits
{
    /** Highest read-first iteration executed so far by any proc. */
    IterNum maxR1st = 0;
    /** Lowest iteration executed so far that wrote the element. */
    IterNum minW = iterInf;
    /** Copy-out arbitration: highest writing iteration copied out. */
    IterNum lastCopyIter = 0;
};

// --- non-privatization wire encoding --------------------------------

/** First field value meaning "set, identity known only at home". */
constexpr uint32_t npWireFirstOther = 65;

/** Pack directory bits for shipment (home -> cache fill). */
uint32_t npPackDir(const NPDirBits &d);

/** Pack cache tag bits for shipment (owner -> home / requester). */
uint32_t npPackTag(const NPTagBits &t, NodeId self);

/** Raw wire fields. */
struct NPWire
{
    uint32_t firstCode; ///< 0 / id+1 / npWireFirstOther
    bool noShr;
    bool rOnly;
};

NPWire npUnpack(uint32_t wire);

/** Decode a wire word into a receiver-relative tag view. */
NPTagBits npWireToTag(uint32_t wire, NodeId self);

// --- privatization wire encoding -------------------------------------

uint32_t privPackTag(bool read1st, bool write);
PrivTagBits privWireToTag(uint32_t wire, IterNum iter);

} // namespace specrt

#endif // SPECRT_SPEC_ACCESS_BITS_HH
