/**
 * @file
 * Reference dependence oracle used by tests and benchmarks.
 *
 * Given the exact access trace a loop performs on an array under
 * test, the oracle answers -- by definition, not by protocol --
 * whether each of the paper's tests must pass:
 *
 *  - non-privatization (section 3.2): every element is either
 *    read-only or accessed by only one processor;
 *  - privatization with read-in/copy-out (sections 2.2.3 / 3.3):
 *    for every element, no read-first iteration is higher than any
 *    writing iteration;
 *  - software LRPD (section 2.2.2): the shadow-array analysis
 *    computed directly.
 *
 * Both the pure protocol logic and the full machine must agree with
 * these verdicts on every trace (the property tests check this).
 */

#ifndef SPECRT_SPEC_ORACLE_HH
#define SPECRT_SPEC_ORACLE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace specrt
{

/** One access in a loop's trace of an array under test. */
struct AccessEvent
{
    NodeId proc;
    IterNum iter;     ///< 1-based iteration number
    uint64_t elem;    ///< element index within the array
    bool isWrite;
    /** Which declared array this access targets (multi-array runs);
     *  the oracle itself analyses one array at a time. */
    int arrayId = 0;
    /** The access came from a tagged reduction statement. */
    bool isReduction = false;
};

/** Verdict of the basic LRPD test (paper section 2.2.2). */
enum class LrpdVerdict
{
    NotParallel,     ///< test failed; re-execute serially
    Doall,           ///< parallel without privatizing the array
    DoallWithPriv,   ///< parallel once the array is privatized
};

const char *lrpdVerdictName(LrpdVerdict v);

/**
 * The dependence oracle. Events must be given in per-iteration
 * program order (events of one iteration in the order the loop body
 * performs them); ordering across iterations is irrelevant.
 */
class Oracle
{
  public:
    /** Does the non-privatization hardware test pass? */
    static bool nonPrivParallel(const std::vector<AccessEvent> &trace);

    /**
     * Does the privatization hardware test (with read-in/copy-out)
     * pass?
     */
    static bool privParallel(const std::vector<AccessEvent> &trace);

    /**
     * Basic LRPD verdict, iteration-wise. Pass the same trace;
     * the within-iteration order is taken from trace order.
     */
    static LrpdVerdict lrpd(const std::vector<AccessEvent> &trace);

    /**
     * Processor-wise LRPD: processors are super-iterations. Assumes
     * each processor executes its iterations in ascending order (the
     * static-scheduling constraint of section 2.2.3); events of one
     * processor are taken in (iter, trace-order) order.
     */
    static LrpdVerdict lrpdProcWise(const std::vector<AccessEvent> &trace);

    /**
     * Index (into the trace, iteration-order interleaving) of the
     * first access at which a cross-iteration dependence becomes
     * visible to the privatization test, or -1 if none.
     */
    static int64_t firstPrivViolation(
        const std::vector<AccessEvent> &trace);

    /**
     * Does the reduction test pass: was the array touched only by
     * tagged reduction accesses?
     */
    static bool reductionValid(const std::vector<AccessEvent> &trace);
};

} // namespace specrt

#endif // SPECRT_SPEC_ORACLE_HH
