#include "spec/access_bits.hh"

#include "sim/logging.hh"

namespace specrt
{

uint32_t
npPackDir(const NPDirBits &d)
{
    uint32_t first = d.first == invalidNode
                         ? 0u
                         : static_cast<uint32_t>(d.first) + 1u;
    return first | (d.noShr ? 1u << 7 : 0u) | (d.rOnly ? 1u << 8 : 0u);
}

uint32_t
npPackTag(const NPTagBits &t, NodeId self)
{
    uint32_t first = 0;
    switch (t.first) {
      case TagFirst::None:
        first = 0;
        break;
      case TagFirst::Own:
        first = static_cast<uint32_t>(self) + 1u;
        break;
      case TagFirst::Other:
        first = npWireFirstOther;
        break;
    }
    return first | (t.noShr ? 1u << 7 : 0u) | (t.rOnly ? 1u << 8 : 0u);
}

NPWire
npUnpack(uint32_t wire)
{
    return NPWire{wire & 0x7f, (wire & (1u << 7)) != 0,
                  (wire & (1u << 8)) != 0};
}

NPTagBits
npWireToTag(uint32_t wire, NodeId self)
{
    NPWire w = npUnpack(wire);
    NPTagBits t;
    if (w.firstCode == 0) {
        t.first = TagFirst::None;
    } else if (w.firstCode != npWireFirstOther &&
               static_cast<NodeId>(w.firstCode - 1) == self) {
        t.first = TagFirst::Own;
    } else {
        t.first = TagFirst::Other;
    }
    t.noShr = w.noShr;
    t.rOnly = w.rOnly;
    return t;
}

uint32_t
privPackTag(bool read1st, bool write)
{
    return (read1st ? 1u : 0u) | (write ? 2u : 0u);
}

PrivTagBits
privWireToTag(uint32_t wire, IterNum iter)
{
    PrivTagBits t;
    t.read1st = (wire & 1u) != 0;
    t.write = (wire & 2u) != 0;
    t.iter = iter;
    return t;
}

} // namespace specrt
