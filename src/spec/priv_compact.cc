#include "spec/priv_compact.hh"

namespace specrt
{

PrivPDirResult
privCompactRead(PrivCompactBits &b, IterNum iter, bool line_untouched)
{
    PrivPDirResult r;
    if (line_untouched) {
        r.needReadIn = true;
        return r;
    }
    PrivCompactBits eff = privCompactEffective(b, iter);
    if (!eff.read1st && !eff.write) {
        // First read of the iteration with no covering write: a
        // read-first, exactly when PMaxR1st < iter && PMaxW < iter
        // holds in the time-stamp version (iterations ascend per
        // processor).
        eff.read1st = true;
        r.readFirst = true;
    }
    b = eff;
    return r;
}

PrivPDirResult
privCompactWrite(PrivCompactBits &b, IterNum iter, bool line_untouched)
{
    PrivPDirResult r;
    if (!b.writeAny) {
        // First write to the element in the whole loop (PMaxW == 0
        // in the time-stamp version).
        if (line_untouched) {
            r.needReadIn = true;
            return r;
        }
        PrivCompactBits eff = privCompactEffective(b, iter);
        eff.write = true;
        eff.writeAny = true;
        b = eff;
        r.firstWrite = true;
        return r;
    }
    PrivCompactBits eff = privCompactEffective(b, iter);
    eff.write = true;
    eff.writeAny = true;
    b = eff;
    return r;
}

void
privCompactReadInDone(PrivCompactBits &b, IterNum iter, bool for_write)
{
    PrivCompactBits eff = privCompactEffective(b, iter);
    if (for_write) {
        eff.write = true;
        eff.writeAny = true;
    } else {
        eff.read1st = true;
    }
    b = eff;
}

} // namespace specrt
