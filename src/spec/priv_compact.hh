/**
 * @file
 * The space-reduced privatization state of paper section 4.1.
 *
 * The full private-directory state keeps two iteration time stamps
 * per element (PMaxR1st, PMaxW). The paper observes that 3 bits
 * suffice: per-iteration Read1st and Write bits (cleared at each
 * iteration boundary, like the cache tags) plus a sticky WriteAny
 * bit ("set if the element has been written in any of the iterations
 * executed so far"), and that "with these three bits, we can build a
 * protocol that has no more messages than the one with PMaxR1st and
 * PMaxW".
 *
 * This header implements that compact state machine; a property test
 * (tests/test_priv_compact.cc) proves it generates exactly the same
 * signal stream as the time-stamp version for every per-processor
 * access sequence with ascending iterations.
 */

#ifndef SPECRT_SPEC_PRIV_COMPACT_HH
#define SPECRT_SPEC_PRIV_COMPACT_HH

#include "spec/access_bits.hh"
#include "spec/priv.hh"

namespace specrt
{

/** Compact private-directory state for one element (3 bits). */
struct PrivCompactBits
{
    bool read1st = false;  ///< read-first happened this iteration
    bool write = false;    ///< written this iteration
    /** Written in any iteration so far (never cleared). */
    bool writeAny = false;
    /** Iteration the per-iteration bits are valid for (hardware
     *  clears them at iteration boundaries; we tag instead). */
    IterNum iter = 0;
};

/** Roll the per-iteration bits forward to @p iter. */
inline PrivCompactBits
privCompactEffective(const PrivCompactBits &b, IterNum iter)
{
    if (b.iter == iter)
        return b;
    return PrivCompactBits{false, false, b.writeAny, iter};
}

/**
 * Private directory processes a read of the element in iteration
 * @p iter (compact form of Fig. 8(b)/(c)'s bookkeeping).
 */
PrivPDirResult privCompactRead(PrivCompactBits &b, IterNum iter,
                               bool line_untouched);

/** Private directory processes a write (compact Fig. 9(g)/(h)). */
PrivPDirResult privCompactWrite(PrivCompactBits &b, IterNum iter,
                                bool line_untouched);

/** Complete a read-in (data arrived from the shared array). */
void privCompactReadInDone(PrivCompactBits &b, IterNum iter,
                           bool for_write);

/** True when the element has never been touched. */
inline bool
privCompactUntouched(const PrivCompactBits &b)
{
    return !b.writeAny && !b.read1st && !b.write && b.iter == 0;
}

} // namespace specrt

#endif // SPECRT_SPEC_PRIV_COMPACT_HH
