/**
 * @file
 * Pure transition logic of the non-privatization algorithm
 * (paper Figures 4, 6, and 7).
 *
 * These functions mutate the access-bit state and report what the
 * hardware must do next (send an update message, bounce a message,
 * or FAIL the parallelization). They have no timing or machine
 * dependencies so property tests can drive them directly; the
 * speculation units in spec_unit.cc call them from the protocol
 * hooks.
 */

#ifndef SPECRT_SPEC_NONPRIV_HH
#define SPECRT_SPEC_NONPRIV_HH

#include "spec/access_bits.hh"

namespace specrt
{

/** Outcome of a cache-side non-privatization step. */
struct NPCacheResult
{
    bool fail = false;
    /** Cache must send a First_update to the home. */
    bool sendFirstUpdate = false;
    /** Cache must send a ROnly_update to the home. */
    bool sendROnlyUpdate = false;
    const char *reason = nullptr;
};

/** Outcome of a directory-side non-privatization step. */
struct NPDirResult
{
    bool fail = false;
    /** Home must bounce a First_update_fail to the sender. */
    bool sendFirstUpdateFail = false;
    const char *reason = nullptr;
};

/**
 * Processor read hitting in the cache (Fig. 6(a)).
 * @param line_dirty whether the line is exclusive-dirty here (update
 *        messages are skipped for dirty lines).
 */
NPCacheResult npCacheRead(NPTagBits &t, bool line_dirty);

/** Processor write hitting a dirty line (Fig. 6(c), dirty path). */
NPCacheResult npCacheWriteDirty(NPTagBits &t);

/**
 * Apply the access that caused a miss to freshly installed tag bits
 * (no messages: the home runs the authoritative update for this
 * access). Idempotent when the bits already reflect the access.
 */
NPCacheResult npCacheLocalApply(NPTagBits &t, bool is_write);

/** Cache receives a First_update_fail (Fig. 7(g)). */
NPCacheResult npCacheFirstUpdateFail(NPTagBits &t);

/** Home processes a read request (Fig. 6(b), post-merge). */
NPDirResult npDirRead(NPDirBits &d, NodeId requester);

/** Home processes a write request (Fig. 6(d), post-merge). */
NPDirResult npDirWrite(NPDirBits &d, NodeId requester);

/** Home receives a First_update (Fig. 7(f)). */
NPDirResult npDirFirstUpdate(NPDirBits &d, NodeId sender);

/** Home receives a ROnly_update (Fig. 7(h)). */
NPDirResult npDirROnlyUpdate(NPDirBits &d, NodeId sender);

/**
 * Combine one element's owner tag wire bits with the home's
 * directory wire bits (see SpecCacheIface::combineBits). The owner's
 * encoding may say "OTHER was first" without naming it; the home
 * always can name it, so the combination carries a real id.
 */
uint32_t npCombineWire(uint32_t owner_wire, uint32_t home_wire);

/**
 * Merge an owner's dirty-line tag bits into the directory ("update
 * directory using the tag state of all the words of the dirty
 * line"). A contradictory merge is itself evidence of a
 * cross-iteration dependence and fails.
 *
 * @param wire   packed tag bits from the owner (npPackTag encoding)
 * @param sender the owner node
 */
NPDirResult npDirMergeDirty(NPDirBits &d, NodeId sender, uint32_t wire);

} // namespace specrt

#endif // SPECRT_SPEC_NONPRIV_HH
