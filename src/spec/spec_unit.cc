#include "spec/spec_unit.hh"

#include "obs/event_log.hh"
#include "sim/critpath.hh"
#include "sim/logging.hh"
#include "sim/timeline.hh"

namespace specrt
{

// --------------------------------------------------------------------
// SpecCacheUnit
// --------------------------------------------------------------------

SpecCacheUnit::SpecCacheUnit(SpecSystem &sys_, NodeId node_)
    : sys(sys_), node(node_)
{
}

namespace
{

/** Grow the parallel (tags, flags) arrays to cover [0, first+elems). */
template <typename T>
void
growSlots(std::vector<T> &tags, std::vector<uint8_t> &flags,
          uint32_t first, uint32_t elems)
{
    size_t want = size_t(first) + elems;
    size_t cap = tags.empty() ? 256 : tags.size();
    while (cap < want)
        cap *= 2;
    tags.resize(cap);
    flags.resize(cap, 0);
}

} // namespace

void
SpecCacheUnit::growNp(uint32_t first, uint32_t elems)
{
    growSlots(npTags, npLineFlag, first, elems);
}

void
SpecCacheUnit::growPriv(uint32_t first, uint32_t elems)
{
    growSlots(privTags, privLineFlag, first, elems);
}

void
SpecCacheUnit::dropLine(uint32_t first, uint32_t elems)
{
    if (first < npLineFlag.size() && npLineFlag[first]) {
        npLineFlag[first] = 0;
        std::fill(npTags.begin() + first,
                  npTags.begin() + first + elems, NPTagBits{});
    }
    if (first < privLineFlag.size() && privLineFlag[first]) {
        privLineFlag[first] = 0;
        std::fill(privTags.begin() + first,
                  privTags.begin() + first + elems, PrivTagBits{});
    }
}

void
SpecCacheUnit::onLoadHit(Addr addr, LineState state, IterNum iter)
{
    if (!sys.armed())
        return;
    const TestRange *range = sys.table().lookup(addr);
    if (!range)
        return;

    Addr line = sys.lineOf(addr);
    uint32_t elems = sys.lineBytes() / range->elemBytes;
    uint32_t first = range->elemIndex(line);
    size_t idx = (addr - line) / range->elemBytes;
    trace::ScopedCtx tctx(sys.now(), node, addr, iter);

    if (range->type == TestType::NonPriv) {
        NPTagBits &bits = npSlice(first, elems)[idx];
        NPCacheResult res =
            npCacheRead(bits, state == LineState::Dirty);
        if (res.fail) {
            sys.fail(node, addr, res.reason);
            return;
        }
        if (res.sendFirstUpdate || res.sendROnlyUpdate) {
            Msg m;
            m.type = res.sendFirstUpdate ? MsgType::FirstUpdate
                                         : MsgType::ROnlyUpdate;
            m.src = node;
            m.dst = sys.mem().homeOf(addr);
            m.lineAddr = line;
            m.elemAddr = addr;
            if (res.sendFirstUpdate)
                ++sys.firstUpdates;
            else
                ++sys.rOnlyUpdates;
            sys.net().send(std::move(m));
        }
        return;
    }

    SPECRT_ASSERT(range->role == PrivRole::PrivateCopy,
                  "processor read of privatization-tested shared "
                  "array %#llx during the loop",
                  (unsigned long long)addr);
    PrivTagBits &bits = privSlice(first, elems)[idx];
    PrivCacheResult res = privCacheRead(bits, iter);
    if (res.readFirst) {
        Msg m;
        m.type = MsgType::ReadFirstSig;
        m.src = node;
        m.dst = sys.mem().homeOf(addr); // the private directory
        m.lineAddr = line;
        m.elemAddr = addr;
        m.iter = iter;
        ++sys.readFirstSigs;
        sys.net().send(std::move(m));
    }
}

void
SpecCacheUnit::onStoreDirtyHit(Addr addr, IterNum iter)
{
    if (!sys.armed())
        return;
    const TestRange *range = sys.table().lookup(addr);
    if (!range)
        return;

    Addr line = sys.lineOf(addr);
    uint32_t elems = sys.lineBytes() / range->elemBytes;
    uint32_t first = range->elemIndex(line);
    size_t idx = (addr - line) / range->elemBytes;
    trace::ScopedCtx tctx(sys.now(), node, addr, iter);

    if (range->type == TestType::NonPriv) {
        NPTagBits &bits = npSlice(first, elems)[idx];
        NPCacheResult res = npCacheWriteDirty(bits);
        if (res.fail)
            sys.fail(node, addr, res.reason);
        return;
    }

    SPECRT_ASSERT(range->role == PrivRole::PrivateCopy,
                  "processor write of privatization-tested shared "
                  "array %#llx during the loop",
                  (unsigned long long)addr);
    PrivTagBits &bits = privSlice(first, elems)[idx];
    PrivCacheResult res = privCacheWrite(bits, iter);
    if (res.firstWrite) {
        Msg m;
        m.type = MsgType::FirstWriteSig;
        m.src = node;
        m.dst = sys.mem().homeOf(addr); // the private directory
        m.lineAddr = line;
        m.elemAddr = addr;
        m.iter = iter;
        ++sys.firstWriteSigs;
        sys.net().send(std::move(m));
    }
}

void
SpecCacheUnit::onFill(Addr line_addr, const MsgBits &bits,
                      Addr elem_addr, bool is_write, IterNum iter)
{
    if (!sys.armed())
        return;
    const TestRange *range = sys.table().lookup(line_addr);
    if (!range)
        return;

    uint32_t elems = sys.lineBytes() / range->elemBytes;
    uint32_t first = range->elemIndex(line_addr);
    size_t idx = (elem_addr - line_addr) / range->elemBytes;
    trace::ScopedCtx tctx(sys.now(), node, elem_addr, iter);

    if (range->type == TestType::NonPriv) {
        SPECRT_ASSERT(bits.size() == elems,
                      "non-priv fill with %u bits, want %u",
                      bits.size(), elems);
        NPTagBits *tags = npSlice(first, elems);
        for (size_t i = 0; i < elems; ++i)
            tags[i] = npWireToTag(bits[i], node);
        NPCacheResult res = npCacheLocalApply(tags[idx], is_write);
        if (res.fail)
            sys.fail(node, elem_addr, res.reason);
        return;
    }

    SPECRT_ASSERT(range->role == PrivRole::PrivateCopy,
                  "fill of privatization-tested shared line");
    SPECRT_ASSERT(bits.size() == elems,
                  "priv fill with %u bits, want %u", bits.size(),
                  elems);
    PrivTagBits *tags = privSlice(first, elems);
    for (size_t i = 0; i < elems; ++i)
        tags[i] = privWireToTag(bits[i], iter);
    // Apply the triggering access locally; the private directory
    // already accounted for it, so no signals here.
    PrivTagBits eff = privEffective(tags[idx], iter);
    if (is_write)
        eff.write = true;
    else if (!eff.write)
        eff.read1st = true;
    tags[idx] = eff;
}

MsgBits
SpecCacheUnit::onDirtyOut(Addr line_addr)
{
    if (!sys.armed())
        return {};
    const TestRange *range = sys.table().lookup(line_addr);
    if (!range || range->type != TestType::NonPriv)
        return {}; // priv state is kept current via signals

    uint32_t elems = sys.lineBytes() / range->elemBytes;
    uint32_t first = range->elemIndex(line_addr);
    NPTagBits *tags = npSlice(first, elems);
    MsgBits wire(elems);
    for (size_t i = 0; i < elems; ++i)
        wire[i] = npPackTag(tags[i], node);
    return wire;
}

MsgBits
SpecCacheUnit::combineBits(Addr line_addr, const MsgBits &owner_bits,
                           const MsgBits &home_bits)
{
    (void)line_addr;
    if (owner_bits.empty())
        return home_bits;
    if (home_bits.empty())
        return owner_bits;
    SPECRT_ASSERT(owner_bits.size() == home_bits.size(),
                  "combineBits size mismatch: %u vs %u",
                  owner_bits.size(), home_bits.size());
    MsgBits out(owner_bits.size());
    for (uint32_t i = 0; i < out.size(); ++i)
        out[i] = npCombineWire(owner_bits[i], home_bits[i]);
    return out;
}

void
SpecCacheUnit::onInval(Addr line_addr)
{
    const TestRange *range = sys.table().lookup(line_addr);
    if (!range)
        return;
    uint32_t elems = sys.lineBytes() / range->elemBytes;
    dropLine(range->elemIndex(line_addr), elems);
}

void
SpecCacheUnit::onMsg(const Msg &msg)
{
    if (!sys.armed())
        return;
    SPECRT_ASSERT(msg.type == MsgType::FirstUpdateFail,
                  "cache spec unit got %s", msgTypeName(msg.type));
    const TestRange *range = sys.table().lookup(msg.elemAddr);
    SPECRT_ASSERT(range, "FirstUpdateFail outside any test range");
    uint32_t first = range->elemIndex(msg.lineAddr);
    if (first >= npLineFlag.size() || !npLineFlag[first])
        return; // line (and its tags) gone; home state authoritative
    size_t idx = (msg.elemAddr - msg.lineAddr) / range->elemBytes;
    trace::ScopedCtx tctx(sys.now(), node, msg.elemAddr, msg.iter);
    NPCacheResult res = npCacheFirstUpdateFail(npTags[first + idx]);
    if (res.fail)
        sys.fail(node, msg.elemAddr, res.reason);
}

void
SpecCacheUnit::clearAll()
{
    std::fill(npTags.begin(), npTags.end(), NPTagBits{});
    std::fill(privTags.begin(), privTags.end(), PrivTagBits{});
    std::fill(npLineFlag.begin(), npLineFlag.end(), 0);
    std::fill(privLineFlag.begin(), privLineFlag.end(), 0);
}

// --------------------------------------------------------------------
// SpecDirUnit
// --------------------------------------------------------------------

SpecDirUnit::SpecDirUnit(SpecSystem &sys_, NodeId node_)
    : sys(sys_), node(node_)
{
}

bool
SpecDirUnit::lineUntouched(Addr line, const TestRange &range) const
{
    for (Addr a = line; a < line + sys.lineBytes();
         a += range.elemBytes) {
        if (!range.contains(a))
            continue;
        const PrivPrivDirBits *b = pp.find(range.elemIndex(a));
        if (b && !b->untouched())
            return false;
    }
    return true;
}

void
SpecDirUnit::sendReadFirstToShared(const TestRange &range,
                                   Addr priv_elem, IterNum iter)
{
    Addr shared_elem = range.toShared(priv_elem);
    Msg m;
    m.type = MsgType::ReadFirstSig;
    m.src = node;
    m.dst = sys.mem().homeOf(shared_elem);
    m.lineAddr = sys.lineOf(shared_elem);
    m.elemAddr = shared_elem;
    m.iter = iter;
    sys.net().send(std::move(m));
}

void
SpecDirUnit::sendFirstWriteToShared(const TestRange &range,
                                    Addr priv_elem, IterNum iter)
{
    Addr shared_elem = range.toShared(priv_elem);
    Msg m;
    m.type = MsgType::FirstWriteSig;
    m.src = node;
    m.dst = sys.mem().homeOf(shared_elem);
    m.lineAddr = sys.lineOf(shared_elem);
    m.elemAddr = shared_elem;
    m.iter = iter;
    sys.net().send(std::move(m));
}

void
SpecDirUnit::startReadIn(const Msg &req, const TestRange &range,
                         bool for_write)
{
    Addr priv_line = req.lineAddr;
    Addr shared_elem = range.toShared(req.elemAddr);
    Addr shared_line = sys.lineOf(shared_elem);
    for (const PendingReadIn &p : pendingReadIns) {
        SPECRT_ASSERT(p.sharedLine != shared_line,
                      "overlapping read-ins for shared line %#llx",
                      (unsigned long long)shared_line);
    }
    pendingReadIns.push_back({shared_line, priv_line, req.elemAddr});

    Msg m;
    m.type = MsgType::ReadInReq;
    m.src = node;
    m.dst = sys.mem().homeOf(shared_elem);
    m.lineAddr = shared_line;
    m.elemAddr = shared_elem;
    m.iter = req.iter;
    m.forWrite = for_write;
    ++sys.readIns;
    sys.net().send(std::move(m));
}

SpecDirAction
SpecDirUnit::onReadReq(const Msg &req)
{
    if (!sys.armed())
        return SpecDirAction::Proceed;
    const TestRange *range = sys.table().lookup(req.elemAddr);
    if (!range)
        return SpecDirAction::Proceed;
    trace::ScopedCtx tctx(sys.now(), req.src, req.elemAddr, req.iter);

    if (range->type == TestType::NonPriv) {
        NPDirResult res =
            npDirRead(np.at(range->elemIndex(req.elemAddr)), req.src);
        if (res.fail)
            sys.fail(req.src, req.elemAddr, res.reason);
        return SpecDirAction::Proceed;
    }

    SPECRT_ASSERT(range->role == PrivRole::PrivateCopy,
                  "cached read of privatization-tested shared array");
    bool untouched = lineUntouched(req.lineAddr, *range);
    PrivPDirResult res =
        privPDirRead(pp.at(range->elemIndex(req.elemAddr)), req.iter,
                     untouched);
    if (res.needReadIn) {
        startReadIn(req, *range, false);
        return SpecDirAction::Defer;
    }
    if (res.readFirst)
        sendReadFirstToShared(*range, req.elemAddr, req.iter);
    return SpecDirAction::Proceed;
}

SpecDirAction
SpecDirUnit::onWriteReq(const Msg &req)
{
    if (!sys.armed())
        return SpecDirAction::Proceed;
    const TestRange *range = sys.table().lookup(req.elemAddr);
    if (!range)
        return SpecDirAction::Proceed;
    trace::ScopedCtx tctx(sys.now(), req.src, req.elemAddr, req.iter);

    if (range->type == TestType::NonPriv) {
        NPDirResult res =
            npDirWrite(np.at(range->elemIndex(req.elemAddr)), req.src);
        if (res.fail)
            sys.fail(req.src, req.elemAddr, res.reason);
        return SpecDirAction::Proceed;
    }

    SPECRT_ASSERT(range->role == PrivRole::PrivateCopy,
                  "cached write of privatization-tested shared array");
    bool untouched = lineUntouched(req.lineAddr, *range);
    PrivPDirResult res =
        privPDirWrite(pp.at(range->elemIndex(req.elemAddr)), req.iter,
                      untouched);
    if (res.needReadIn) {
        startReadIn(req, *range, true);
        return SpecDirAction::Defer;
    }
    if (res.firstWrite)
        sendFirstWriteToShared(*range, req.elemAddr, req.iter);
    return SpecDirAction::Proceed;
}

MsgBits
SpecDirUnit::collectFillBits(NodeId requester, Addr line_addr,
                             IterNum iter)
{
    if (!sys.armed())
        return {};
    const TestRange *range = sys.table().lookup(line_addr);
    if (!range)
        return {};

    uint32_t elems = sys.lineBytes() / range->elemBytes;
    uint32_t first = range->elemIndex(line_addr);
    MsgBits wire(elems);

    if (range->type == TestType::NonPriv) {
        for (uint32_t i = 0; i < elems; ++i) {
            const NPDirBits *b = np.find(first + i);
            wire[i] = npPackDir(b ? *b : NPDirBits{});
        }
        (void)requester;
        return wire;
    }

    SPECRT_ASSERT(range->role == PrivRole::PrivateCopy,
                  "fill bits for privatization-tested shared line");
    for (uint32_t i = 0; i < elems; ++i) {
        const PrivPrivDirBits *b = pp.find(first + i);
        if (!b)
            continue;
        wire[i] = privPackTag(b->pMaxR1st == iter, b->pMaxW == iter);
    }
    return wire;
}

void
SpecDirUnit::onDirtyBits(NodeId from, Addr line_addr,
                         const MsgBits &bits)
{
    if (!sys.armed() || bits.empty())
        return;
    const TestRange *range = sys.table().lookup(line_addr);
    if (!range)
        return;
    SPECRT_ASSERT(range->type == TestType::NonPriv,
                  "dirty bits for non-non-priv range");
    uint32_t elems = sys.lineBytes() / range->elemBytes;
    uint32_t first = range->elemIndex(line_addr);
    SPECRT_ASSERT(bits.size() == elems, "dirty bits size mismatch");
    for (uint32_t i = 0; i < elems; ++i) {
        Addr elem = line_addr + i * range->elemBytes;
        trace::ScopedCtx tctx(sys.now(), from, elem, 0);
        NPDirResult res = npDirMergeDirty(np.at(first + i), from,
                                          bits[i]);
        if (res.fail) {
            sys.fail(from, elem, res.reason);
            return;
        }
    }
}

void
SpecDirUnit::onMsg(const Msg &msg)
{
    if (!sys.armed())
        return;

    if (msg.type == MsgType::ReadInReply) {
        PendingReadIn pending;
        bool found = false;
        for (size_t i = 0; i < pendingReadIns.size(); ++i) {
            if (pendingReadIns[i].sharedLine == msg.lineAddr) {
                pending = pendingReadIns[i];
                pendingReadIns[i] = pendingReadIns.back();
                pendingReadIns.pop_back();
                found = true;
                break;
            }
        }
        SPECRT_ASSERT(found, "stray ReadInReply for %#llx",
                      (unsigned long long)msg.lineAddr);

        sys.mem().writeLine(pending.privLine, msg.data.data(),
                            static_cast<uint32_t>(msg.data.size()));
        trace::ScopedCtx tctx(sys.now(), node, pending.privElem,
                              msg.iter);
        const TestRange *prange = sys.table().lookup(pending.privElem);
        SPECRT_ASSERT(prange, "read-in for unloaded private range");
        privPDirReadInDone(pp.at(prange->elemIndex(pending.privElem)),
                           msg.iter, msg.forWrite);
        sys.dirCtrl(node).resumeDeferred(pending.privLine);
        return;
    }

    const TestRange *range = sys.table().lookup(msg.elemAddr);
    SPECRT_ASSERT(range, "spec dir message outside any test range");
    trace::ScopedCtx tctx(sys.now(), msg.src, msg.elemAddr, msg.iter);
    uint32_t slot = range->elemIndex(msg.elemAddr);

    switch (msg.type) {
      case MsgType::FirstUpdate: {
        NPDirResult res = npDirFirstUpdate(np.at(slot), msg.src);
        if (res.fail) {
            sys.fail(msg.src, msg.elemAddr, res.reason);
            return;
        }
        if (res.sendFirstUpdateFail) {
            Msg fail;
            fail.type = MsgType::FirstUpdateFail;
            fail.src = node;
            fail.dst = msg.src;
            fail.lineAddr = msg.lineAddr;
            fail.elemAddr = msg.elemAddr;
            sys.net().send(std::move(fail));
        }
        return;
      }
      case MsgType::ROnlyUpdate: {
        NPDirResult res = npDirROnlyUpdate(np.at(slot), msg.src);
        if (res.fail)
            sys.fail(msg.src, msg.elemAddr, res.reason);
        return;
      }
      case MsgType::ReadFirstSig: {
        if (range->role == PrivRole::PrivateCopy) {
            // Fig. 8(b): record and forward to the shared directory.
            privPDirReadFirstSig(pp.at(slot), msg.iter);
            sendReadFirstToShared(*range, msg.elemAddr, msg.iter);
            return;
        }
        PrivSDirResult res = privSDirReadFirst(ps.at(slot), msg.iter);
        if (res.fail)
            sys.fail(msg.src, msg.elemAddr, res.reason);
        return;
      }
      case MsgType::FirstWriteSig: {
        if (range->role == PrivRole::PrivateCopy) {
            // Fig. 9(g).
            PrivPDirResult res =
                privPDirFirstWriteSig(pp.at(slot), msg.iter);
            if (res.firstWrite)
                sendFirstWriteToShared(*range, msg.elemAddr, msg.iter);
            return;
        }
        PrivSDirResult res = privSDirFirstWrite(ps.at(slot), msg.iter);
        if (res.fail)
            sys.fail(msg.src, msg.elemAddr, res.reason);
        return;
      }
      case MsgType::ReadInReq: {
        SPECRT_ASSERT(range->role == PrivRole::SharedArray,
                      "read-in request at non-shared range");
        PrivSharedDirBits &bits = ps.at(slot);
        PrivSDirResult res =
            msg.forWrite ? privSDirFirstWrite(bits, msg.iter)
                         : privSDirReadFirst(bits, msg.iter);
        if (res.fail)
            sys.fail(msg.src, msg.elemAddr, res.reason);
        // Reply with the line even on failure so nothing wedges.
        Msg reply;
        reply.type = MsgType::ReadInReply;
        reply.src = node;
        reply.dst = msg.src;
        reply.lineAddr = msg.lineAddr;
        reply.elemAddr = msg.elemAddr;
        reply.iter = msg.iter;
        reply.forWrite = msg.forWrite;
        reply.data.resize(sys.lineBytes());
        sys.mem().readLine(msg.lineAddr, reply.data.data(),
                           sys.lineBytes());
        sys.net().send(std::move(reply), sys.cfg().lat.dirMemAccess);
        return;
      }
      case MsgType::CopyOutSig: {
        SPECRT_ASSERT(range->role == PrivRole::SharedArray,
                      "copy-out at non-shared range");
        ++sys.copyOuts;
        if (privSDirCopyOut(ps.at(slot), msg.iter))
            sys.mem().write(msg.elemAddr, range->elemBytes, msg.value);
        return;
      }
      default:
        panic("dir spec unit got %s", msgTypeName(msg.type));
    }
}

void
SpecDirUnit::clearAll()
{
    np.clear();
    ps.clear();
    pp.clear();
    pendingReadIns.clear();
}

const NPDirBits *
SpecDirUnit::findNp(Addr elem) const
{
    const TestRange *range = sys.table().lookup(elem);
    return range ? np.find(range->elemIndex(elem)) : nullptr;
}

NPDirBits &
SpecDirUnit::npBitsForTest(Addr elem)
{
    const TestRange *range = sys.table().lookup(elem);
    SPECRT_ASSERT(range, "elem %#llx not under test",
                  (unsigned long long)elem);
    return np.at(range->elemIndex(elem));
}

PrivSharedDirBits &
SpecDirUnit::sharedBitsForTest(Addr elem)
{
    const TestRange *range = sys.table().lookup(elem);
    SPECRT_ASSERT(range, "elem %#llx not under test",
                  (unsigned long long)elem);
    return ps.at(range->elemIndex(elem));
}

std::vector<std::pair<Addr, IterNum>>
SpecDirUnit::writtenPrivElems(Addr base, Addr end) const
{
    std::vector<std::pair<Addr, IterNum>> out;
    for (const TestRange &r : sys.table().allRanges()) {
        Addr lo = base > r.base ? base : r.base;
        Addr hi = end < r.end ? end : r.end;
        for (Addr a = lo; a < hi; a += r.elemBytes) {
            const PrivPrivDirBits *b = pp.find(r.elemIndex(a));
            if (b && b->pMaxW > 0)
                out.emplace_back(a, b->pMaxW);
        }
    }
    return out;
}

// --------------------------------------------------------------------
// SpecSystem
// --------------------------------------------------------------------

SpecSystem::SpecSystem(DsmSystem &dsm_)
    : StatGroup("spec"),
      firstUpdates(this, "first_updates", "First_update messages"),
      rOnlyUpdates(this, "ronly_updates", "ROnly_update messages"),
      readFirstSigs(this, "read_first_sigs", "read-first signals"),
      firstWriteSigs(this, "first_write_sigs", "first-write signals"),
      readIns(this, "read_ins", "read-in transactions"),
      copyOuts(this, "copy_outs", "copy-out transactions"),
      failures(this, "failures", "speculation failures latched"),
      dsm(dsm_)
{
    for (NodeId n = 0; n < dsm.numProcs(); ++n) {
        cacheUnits.push_back(std::make_unique<SpecCacheUnit>(*this, n));
        dirUnits.push_back(std::make_unique<SpecDirUnit>(*this, n));
        dsm.cacheCtrl(n).setSpecUnit(cacheUnits.back().get());
        dsm.dirCtrl(n).setSpecUnit(dirUnits.back().get());
    }
}

SpecSystem::~SpecSystem()
{
    for (NodeId n = 0; n < dsm.numProcs(); ++n) {
        dsm.cacheCtrl(n).setSpecUnit(nullptr);
        dsm.dirCtrl(n).setSpecUnit(nullptr);
    }
}

void
SpecSystem::arm()
{
    for (auto &u : cacheUnits)
        u->clearAll();
    for (auto &u : dirUnits)
        u->clearAll();
    clearFailure();
    _armed = true;
}

void
SpecSystem::disarm()
{
    _armed = false;
    for (auto &u : dirUnits)
        u->clearPendingReadIns();
}

void
SpecSystem::fail(NodeId node, Addr elem, const char *reason)
{
    if (_failure.failed)
        return;
    _failure.failed = true;
    _failure.node = node;
    _failure.elemAddr = elem;
    _failure.tick = dsm.eventQueue().curTick();
    _failure.reason = reason ? reason : "unspecified";
    ++failures;

    // The failing element's home directory is where its transactions
    // serialized; mark the conflict on the contention heatmap.
    timeline::dirConflict(dsm.memory().homeOf(elem), elem);

    // Flight-recorder abort event: the iteration is only known when
    // the trace's ambient ctx is published (ScopedCtx is gated on
    // trace::enabled()); -1 says "unattributed".
    obs::abortEvent(_failure.tick, elem, node,
                    trace::enabled() ? trace::ctx().iter
                                     : static_cast<IterNum>(-1),
                    _failure.reason.c_str(),
                    trace::violatedRule(reason));

    if (trace::enabled()) {
        // The handler that tripped the detector published the access
        // context (spec ScopedCtx) before running the test logic.
        _failure.iter = trace::ctx().iter;
        auto &buf = trace::buffer();
        _failure.cause = trace::attributeAbort(
            buf, elem, node, _failure.iter, reason, _failure.tick);
        trace::TraceRecord r;
        r.tick = _failure.tick;
        r.op = trace::TraceOp::Abort;
        r.node = node;
        r.iter = _failure.iter;
        r.addr = elem;
        r.label = reason; // detector reasons are string literals
        buf.emit(r);
        // With the timeline on, the attribution report also names
        // the hot home nodes / elements seen so far.
        std::string hot = timeline::enabled()
                              ? timeline::current().hotSummary()
                              : std::string();
        // With the critical-path profiler on, also say what the run
        // was bounded by when it aborted.
        std::string cp = critpath::enabled()
                             ? critpath::summaryLine()
                             : std::string();
        warn("speculation abort attributed:\n%s%s%s%s%s",
             _failure.cause.str().c_str(), hot.empty() ? "" : "\n",
             hot.c_str(), cp.empty() ? "" : "\n", cp.c_str());
    }

    if (abortHook)
        abortHook();
}

std::vector<std::pair<Addr, IterNum>>
SpecSystem::writtenPrivElems(NodeId p, Addr base, Addr end) const
{
    return dirUnits.at(p)->writtenPrivElems(base, end);
}

} // namespace specrt
