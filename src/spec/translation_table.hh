/**
 * @file
 * The address-range comparator / translation table of section 4.1.
 *
 * The compiler loads it with the physical ranges of the arrays under
 * test before the speculative loop starts; given an address it
 * yields which algorithm applies (plain / non-privatization /
 * privatization) and, for privatization, links each processor's
 * private copy to the shared array it mirrors.
 */

#ifndef SPECRT_SPEC_TRANSLATION_TABLE_HH
#define SPECRT_SPEC_TRANSLATION_TABLE_HH

#include <vector>

#include "mem/addr_map.hh"
#include "sim/types.hh"

namespace specrt
{

/** Which speculation algorithm applies to a range. */
enum class TestType
{
    None,      ///< plain cache coherence
    NonPriv,   ///< non-privatization algorithm (Figs. 4, 6, 7)
    Priv,      ///< privatization algorithm (Figs. 8, 9)
    /**
     * Reduction parallelization (an extension in the spirit of the
     * LRPD test's reduction leg; the paper lists faster handling of
     * common loop types as ongoing work). The array is accessed only
     * through tagged reduction statements; execution privatizes it
     * into zero-initialized partial accumulators that are merged
     * into the shared array after the loop. A non-reduction access
     * is detected by the address-range comparator and fails the run.
     */
    Reduction,
};

/** Role of a range under the privatization algorithm. */
enum class PrivRole
{
    NotPriv,
    SharedArray,   ///< the shared array (MaxR1st / MinW live here)
    PrivateCopy,   ///< one processor's private copy
};

/** One entry of the translation table. */
struct TestRange
{
    Addr base = invalidAddr;
    Addr end = invalidAddr;      ///< one past the last byte
    uint32_t elemBytes = 4;
    TestType type = TestType::None;
    PrivRole role = PrivRole::NotPriv;
    /** Base of the mirrored shared array (PrivateCopy ranges). */
    Addr sharedBase = invalidAddr;
    /** Owner processor (PrivateCopy ranges). */
    NodeId owner = invalidNode;
    /**
     * First slot of this range in the dense element-id space the
     * spec units index their access-bit tables with (see
     * TranslationTable::numElemSlots). Assigned at registration.
     */
    uint32_t elemOffset = 0;

    bool contains(Addr a) const { return a >= base && a < end; }

    /** Dense element id of @p a (must lie within the range). */
    uint32_t
    elemIndex(Addr a) const
    {
        return elemOffset + static_cast<uint32_t>((a - base) /
                                                  elemBytes);
    }

    /** Translate a private-copy address to its shared counterpart. */
    Addr
    toShared(Addr a) const
    {
        return sharedBase + (a - base);
    }
};

/**
 * The (global) translation table. The paper keeps one per node,
 * loaded identically by system calls; a single shared object is
 * equivalent in a simulator.
 */
class TranslationTable
{
  public:
    /** Register a non-privatization array under test. */
    void addNonPriv(const Region &region);

    /**
     * Register a privatization-tested array: the shared region plus
     * one private copy per processor.
     *
     * @param shared  the shared array region
     * @param copies  region of processor p's private copy, indexed p
     */
    void addPriv(const Region &shared,
                 const std::vector<const Region *> &copies);

    /** Look up the entry covering @p addr, or nullptr (plain data). */
    const TestRange *lookup(Addr addr) const;

    /** Unload everything (loop finished). */
    void
    clear()
    {
        ranges.clear();
        totalSlots = 0;
    }

    size_t numRanges() const { return ranges.size(); }

    /** Every registered range (dense-table iteration). */
    const std::vector<TestRange> &allRanges() const { return ranges; }

    /**
     * One past the highest dense element id handed out. Each range's
     * slot count is padded to a slotAlign multiple so a whole-line
     * slice starting at any in-range line never crosses into the
     * next range's slots.
     */
    uint32_t numElemSlots() const { return totalSlots; }

    /**
     * Per-range slot alignment: at least the largest possible
     * elements-per-line count (256-byte lines of 1-byte elements),
     * so per-line spec-bit slices stay within their range's slots.
     */
    static constexpr uint32_t slotAlign = 256;

  private:
    /** Assign r.elemOffset and grow the slot space. */
    void assignSlots(TestRange &r);

    std::vector<TestRange> ranges;
    uint32_t totalSlots = 0;
};

} // namespace specrt

#endif // SPECRT_SPEC_TRANSLATION_TABLE_HH
