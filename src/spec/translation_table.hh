/**
 * @file
 * The address-range comparator / translation table of section 4.1.
 *
 * The compiler loads it with the physical ranges of the arrays under
 * test before the speculative loop starts; given an address it
 * yields which algorithm applies (plain / non-privatization /
 * privatization) and, for privatization, links each processor's
 * private copy to the shared array it mirrors.
 */

#ifndef SPECRT_SPEC_TRANSLATION_TABLE_HH
#define SPECRT_SPEC_TRANSLATION_TABLE_HH

#include <vector>

#include "mem/addr_map.hh"
#include "sim/types.hh"

namespace specrt
{

/** Which speculation algorithm applies to a range. */
enum class TestType
{
    None,      ///< plain cache coherence
    NonPriv,   ///< non-privatization algorithm (Figs. 4, 6, 7)
    Priv,      ///< privatization algorithm (Figs. 8, 9)
    /**
     * Reduction parallelization (an extension in the spirit of the
     * LRPD test's reduction leg; the paper lists faster handling of
     * common loop types as ongoing work). The array is accessed only
     * through tagged reduction statements; execution privatizes it
     * into zero-initialized partial accumulators that are merged
     * into the shared array after the loop. A non-reduction access
     * is detected by the address-range comparator and fails the run.
     */
    Reduction,
};

/** Role of a range under the privatization algorithm. */
enum class PrivRole
{
    NotPriv,
    SharedArray,   ///< the shared array (MaxR1st / MinW live here)
    PrivateCopy,   ///< one processor's private copy
};

/** One entry of the translation table. */
struct TestRange
{
    Addr base = invalidAddr;
    Addr end = invalidAddr;      ///< one past the last byte
    uint32_t elemBytes = 4;
    TestType type = TestType::None;
    PrivRole role = PrivRole::NotPriv;
    /** Base of the mirrored shared array (PrivateCopy ranges). */
    Addr sharedBase = invalidAddr;
    /** Owner processor (PrivateCopy ranges). */
    NodeId owner = invalidNode;

    bool contains(Addr a) const { return a >= base && a < end; }

    /** Translate a private-copy address to its shared counterpart. */
    Addr
    toShared(Addr a) const
    {
        return sharedBase + (a - base);
    }
};

/**
 * The (global) translation table. The paper keeps one per node,
 * loaded identically by system calls; a single shared object is
 * equivalent in a simulator.
 */
class TranslationTable
{
  public:
    /** Register a non-privatization array under test. */
    void addNonPriv(const Region &region);

    /**
     * Register a privatization-tested array: the shared region plus
     * one private copy per processor.
     *
     * @param shared  the shared array region
     * @param copies  region of processor p's private copy, indexed p
     */
    void addPriv(const Region &shared,
                 const std::vector<const Region *> &copies);

    /** Look up the entry covering @p addr, or nullptr (plain data). */
    const TestRange *lookup(Addr addr) const;

    /** Unload everything (loop finished). */
    void clear() { ranges.clear(); }

    size_t numRanges() const { return ranges.size(); }

  private:
    std::vector<TestRange> ranges;
};

} // namespace specrt

#endif // SPECRT_SPEC_TRANSLATION_TABLE_HH
