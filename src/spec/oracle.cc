#include "spec/oracle.hh"

#include <algorithm>
#include <map>
#include <set>

#include "spec/access_bits.hh"

namespace specrt
{

const char *
lrpdVerdictName(LrpdVerdict v)
{
    switch (v) {
      case LrpdVerdict::NotParallel:   return "NotParallel";
      case LrpdVerdict::Doall:         return "Doall";
      case LrpdVerdict::DoallWithPriv: return "DoallWithPriv";
    }
    return "Unknown";
}

bool
Oracle::nonPrivParallel(const std::vector<AccessEvent> &trace)
{
    struct ElemInfo
    {
        std::set<NodeId> procs;
        bool written = false;
    };
    std::map<uint64_t, ElemInfo> elems;
    for (const AccessEvent &e : trace) {
        ElemInfo &info = elems[e.elem];
        info.procs.insert(e.proc);
        info.written |= e.isWrite;
    }
    for (const auto &[elem, info] : elems) {
        bool read_only = !info.written;
        bool single_proc = info.procs.size() == 1;
        if (!read_only && !single_proc)
            return false;
    }
    return true;
}

bool
Oracle::privParallel(const std::vector<AccessEvent> &trace)
{
    // Per element: highest read-first iteration vs lowest writing
    // iteration. Read-first-ness depends only on within-iteration
    // program order, which the trace preserves.
    struct ElemInfo
    {
        IterNum maxR1st = 0;
        IterNum minW = iterInf;
        /** Iterations that wrote the element (for read-first calc). */
        std::set<IterNum> writers;
    };
    std::map<uint64_t, ElemInfo> elems;

    // First pass: which (elem, iter) pairs see a write before the
    // read? Track per (elem,iter) whether a write already happened.
    std::map<std::pair<uint64_t, IterNum>, bool> written_in_iter;
    for (const AccessEvent &e : trace) {
        ElemInfo &info = elems[e.elem];
        auto key = std::make_pair(e.elem, e.iter);
        if (e.isWrite) {
            written_in_iter[key] = true;
            info.minW = std::min(info.minW, e.iter);
        } else {
            if (!written_in_iter[key])
                info.maxR1st = std::max(info.maxR1st, e.iter);
        }
    }
    for (const auto &[elem, info] : elems) {
        if (info.maxR1st > info.minW)
            return false;
    }
    return true;
}

namespace
{

/**
 * Run the LRPD marking + analysis with an arbitrary "iteration key"
 * (the iteration number for the iteration-wise test, the processor
 * for the processor-wise test).
 */
LrpdVerdict
lrpdWithKey(const std::vector<AccessEvent> &trace,
            const std::vector<int64_t> &keys)
{
    struct Shadow
    {
        bool aw = false;
        bool ar = false;
        bool anp = false;
    };
    std::map<uint64_t, Shadow> shadow;

    // Per (elem, key): whether the key-iteration wrote the element
    // at all, and whether a write precedes a given read.
    std::map<std::pair<uint64_t, int64_t>, bool> writes_in_key;
    for (size_t i = 0; i < trace.size(); ++i) {
        if (trace[i].isWrite)
            writes_in_key[{trace[i].elem, keys[i]}] = true;
    }

    std::map<std::pair<uint64_t, int64_t>, bool> written_so_far;
    std::set<std::pair<uint64_t, int64_t>> elem_writes; // for Atw
    uint64_t atw = 0;

    for (size_t i = 0; i < trace.size(); ++i) {
        const AccessEvent &e = trace[i];
        int64_t key = keys[i];
        Shadow &s = shadow[e.elem];
        if (e.isWrite) {
            s.aw = true;
            written_so_far[{e.elem, key}] = true;
            if (elem_writes.insert({e.elem, key}).second)
                ++atw; // distinct element written in this iteration
        } else {
            if (!writes_in_key[{e.elem, key}])
                s.ar = true; // not written in this iteration at all
            if (!written_so_far[{e.elem, key}])
                s.anp = true; // not written before this read
        }
    }

    uint64_t atm = 0;
    bool aw_and_ar = false;
    bool aw_and_anp = false;
    for (const auto &[elem, s] : shadow) {
        if (s.aw)
            ++atm;
        aw_and_ar |= s.aw && s.ar;
        aw_and_anp |= s.aw && s.anp;
    }

    if (aw_and_ar)
        return LrpdVerdict::NotParallel;
    if (atw == atm)
        return LrpdVerdict::Doall;
    if (aw_and_anp)
        return LrpdVerdict::NotParallel;
    return LrpdVerdict::DoallWithPriv;
}

} // namespace

LrpdVerdict
Oracle::lrpd(const std::vector<AccessEvent> &trace)
{
    std::vector<int64_t> keys(trace.size());
    for (size_t i = 0; i < trace.size(); ++i)
        keys[i] = trace[i].iter;
    return lrpdWithKey(trace, keys);
}

LrpdVerdict
Oracle::lrpdProcWise(const std::vector<AccessEvent> &trace)
{
    std::vector<int64_t> keys(trace.size());
    for (size_t i = 0; i < trace.size(); ++i)
        keys[i] = trace[i].proc;
    return lrpdWithKey(trace, keys);
}

int64_t
Oracle::firstPrivViolation(const std::vector<AccessEvent> &trace)
{
    std::map<uint64_t, PrivSharedDirBits> state;
    std::map<std::pair<uint64_t, IterNum>, bool> written_in_iter;
    for (size_t i = 0; i < trace.size(); ++i) {
        const AccessEvent &e = trace[i];
        PrivSharedDirBits &bits = state[e.elem];
        auto key = std::make_pair(e.elem, e.iter);
        if (e.isWrite) {
            bool first = !written_in_iter[key];
            written_in_iter[key] = true;
            if (first) {
                if (e.iter < bits.maxR1st)
                    return static_cast<int64_t>(i);
                bits.minW = std::min(bits.minW, e.iter);
            }
        } else {
            if (!written_in_iter[key]) {
                if (e.iter > bits.minW)
                    return static_cast<int64_t>(i);
                bits.maxR1st = std::max(bits.maxR1st, e.iter);
            }
        }
    }
    return -1;
}

bool
Oracle::reductionValid(const std::vector<AccessEvent> &trace)
{
    for (const AccessEvent &e : trace) {
        if (!e.isReduction)
            return false;
    }
    return true;
}

} // namespace specrt
