#include "spec/oracle.hh"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "spec/access_bits.hh"

namespace specrt
{

namespace
{

/**
 * Hash for (element, iteration-key) pairs. Oracle passes are pure
 * folds over the trace -- no result depends on container iteration
 * order -- so unordered tables replace the ordered maps the first
 * implementation used (rb-tree node churn dominated oracle time on
 * long traces).
 */
struct PairHash
{
    size_t
    operator()(const std::pair<uint64_t, int64_t> &p) const
    {
        // splitmix64-style mix of the two words.
        uint64_t h = p.first + 0x9e3779b97f4a7c15ull +
                     (static_cast<uint64_t>(p.second) << 1);
        h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
        h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
        return static_cast<size_t>(h ^ (h >> 31));
    }
};

template <typename V>
using PairMap =
    std::unordered_map<std::pair<uint64_t, int64_t>, V, PairHash>;

} // namespace

const char *
lrpdVerdictName(LrpdVerdict v)
{
    switch (v) {
      case LrpdVerdict::NotParallel:   return "NotParallel";
      case LrpdVerdict::Doall:         return "Doall";
      case LrpdVerdict::DoallWithPriv: return "DoallWithPriv";
    }
    return "Unknown";
}

bool
Oracle::nonPrivParallel(const std::vector<AccessEvent> &trace)
{
    struct ElemInfo
    {
        NodeId firstProc;
        bool multiProc = false;
        bool written = false;
    };
    std::unordered_map<uint64_t, ElemInfo> elems;
    elems.reserve(trace.size());
    for (const AccessEvent &e : trace) {
        auto [it, fresh] = elems.try_emplace(e.elem);
        ElemInfo &info = it->second;
        if (fresh)
            info.firstProc = e.proc;
        else if (e.proc != info.firstProc)
            info.multiProc = true;
        info.written |= e.isWrite;
    }
    for (const auto &[elem, info] : elems) {
        if (info.written && info.multiProc)
            return false;
    }
    return true;
}

bool
Oracle::privParallel(const std::vector<AccessEvent> &trace)
{
    // Per element: highest read-first iteration vs lowest writing
    // iteration. Read-first-ness depends only on within-iteration
    // program order, which the trace preserves.
    struct ElemInfo
    {
        IterNum maxR1st = 0;
        IterNum minW = iterInf;
    };
    std::unordered_map<uint64_t, ElemInfo> elems;
    elems.reserve(trace.size());

    // Track per (elem, iter) whether a write already happened, so a
    // later read in the same iteration is not read-first.
    PairMap<bool> written_in_iter;
    written_in_iter.reserve(trace.size());
    for (const AccessEvent &e : trace) {
        ElemInfo &info = elems[e.elem];
        auto key = std::make_pair(e.elem,
                                  static_cast<int64_t>(e.iter));
        if (e.isWrite) {
            written_in_iter[key] = true;
            info.minW = std::min(info.minW, e.iter);
        } else {
            if (!written_in_iter[key])
                info.maxR1st = std::max(info.maxR1st, e.iter);
        }
    }
    for (const auto &[elem, info] : elems) {
        if (info.maxR1st > info.minW)
            return false;
    }
    return true;
}

namespace
{

/**
 * Run the LRPD marking + analysis with an arbitrary "iteration key"
 * (the iteration number for the iteration-wise test, the processor
 * for the processor-wise test).
 */
LrpdVerdict
lrpdWithKey(const std::vector<AccessEvent> &trace,
            const std::vector<int64_t> &keys)
{
    struct Shadow
    {
        bool aw = false;
        bool ar = false;
        bool anp = false;
    };
    std::unordered_map<uint64_t, Shadow> shadow;
    shadow.reserve(trace.size());

    // Per (elem, key): whether the key-iteration wrote the element
    // at all, and whether a write precedes a given read. The first
    // map doubles as the Atw count: its keys are exactly the
    // distinct (element, iteration) pairs that wrote.
    PairMap<bool> writes_in_key;
    writes_in_key.reserve(trace.size());
    for (size_t i = 0; i < trace.size(); ++i) {
        if (trace[i].isWrite)
            writes_in_key[{trace[i].elem, keys[i]}] = true;
    }
    uint64_t atw = writes_in_key.size();

    PairMap<bool> written_so_far;
    written_so_far.reserve(trace.size());

    for (size_t i = 0; i < trace.size(); ++i) {
        const AccessEvent &e = trace[i];
        int64_t key = keys[i];
        Shadow &s = shadow[e.elem];
        if (e.isWrite) {
            s.aw = true;
            written_so_far[{e.elem, key}] = true;
        } else {
            if (!writes_in_key[{e.elem, key}])
                s.ar = true; // not written in this iteration at all
            if (!written_so_far[{e.elem, key}])
                s.anp = true; // not written before this read
        }
    }

    uint64_t atm = 0;
    bool aw_and_ar = false;
    bool aw_and_anp = false;
    for (const auto &[elem, s] : shadow) {
        if (s.aw)
            ++atm;
        aw_and_ar |= s.aw && s.ar;
        aw_and_anp |= s.aw && s.anp;
    }

    if (aw_and_ar)
        return LrpdVerdict::NotParallel;
    if (atw == atm)
        return LrpdVerdict::Doall;
    if (aw_and_anp)
        return LrpdVerdict::NotParallel;
    return LrpdVerdict::DoallWithPriv;
}

} // namespace

LrpdVerdict
Oracle::lrpd(const std::vector<AccessEvent> &trace)
{
    std::vector<int64_t> keys(trace.size());
    for (size_t i = 0; i < trace.size(); ++i)
        keys[i] = trace[i].iter;
    return lrpdWithKey(trace, keys);
}

LrpdVerdict
Oracle::lrpdProcWise(const std::vector<AccessEvent> &trace)
{
    std::vector<int64_t> keys(trace.size());
    for (size_t i = 0; i < trace.size(); ++i)
        keys[i] = trace[i].proc;
    return lrpdWithKey(trace, keys);
}

int64_t
Oracle::firstPrivViolation(const std::vector<AccessEvent> &trace)
{
    std::unordered_map<uint64_t, PrivSharedDirBits> state;
    PairMap<bool> written_in_iter;
    for (size_t i = 0; i < trace.size(); ++i) {
        const AccessEvent &e = trace[i];
        PrivSharedDirBits &bits = state[e.elem];
        auto key = std::make_pair(e.elem,
                                  static_cast<int64_t>(e.iter));
        if (e.isWrite) {
            bool first = !written_in_iter[key];
            written_in_iter[key] = true;
            if (first) {
                if (e.iter < bits.maxR1st)
                    return static_cast<int64_t>(i);
                bits.minW = std::min(bits.minW, e.iter);
            }
        } else {
            if (!written_in_iter[key]) {
                if (e.iter > bits.minW)
                    return static_cast<int64_t>(i);
                bits.maxR1st = std::max(bits.maxR1st, e.iter);
            }
        }
    }
    return -1;
}

bool
Oracle::reductionValid(const std::vector<AccessEvent> &trace)
{
    for (const AccessEvent &e : trace) {
        if (!e.isReduction)
            return false;
    }
    return true;
}

} // namespace specrt
