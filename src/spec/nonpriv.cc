#include "spec/nonpriv.hh"

#include "sim/logging.hh"
#include "sim/timeline.hh"
#include "sim/trace.hh"

namespace specrt
{

namespace
{

// Trace instrumentation: each transition function declares one
// tracer on entry; at exit the tracer records the packed before/after
// bits against the ambient trace context (set by spec_unit) when
// they differ. The metric timeline counts the same transitions (its
// "spec.transitions" series) independently of tracing. Costs two
// enabled() loads when both are off.

struct TraceTagBits
{
    TraceTagBits(const NPTagBits &t_, bool write_)
        : t(t_), write(write_), on(trace::enabled()),
          tlOn(timeline::enabled())
    {
        if (on || tlOn)
            before = npPackTag(t, trace::ctx().node);
    }

    ~TraceTagBits()
    {
        if (!on && !tlOn)
            return;
        uint32_t after = npPackTag(t, trace::ctx().node);
        if (tlOn && after != before)
            timeline::specTransition();
        if (on)
            trace::specBits(write, before, after);
    }

    const NPTagBits &t;
    bool write;
    bool on;
    bool tlOn;
    uint32_t before = 0;
};

struct TraceDirBits
{
    TraceDirBits(const NPDirBits &d_, bool write_)
        : d(d_), write(write_), on(trace::enabled()),
          tlOn(timeline::enabled())
    {
        if (on || tlOn)
            before = npPackDir(d);
    }

    ~TraceDirBits()
    {
        if (!on && !tlOn)
            return;
        uint32_t after = npPackDir(d);
        if (tlOn && after != before)
            timeline::specTransition();
        if (on)
            trace::specBits(write, before, after);
    }

    const NPDirBits &d;
    bool write;
    bool on;
    bool tlOn;
    uint32_t before = 0;
};

} // namespace

NPCacheResult
npCacheRead(NPTagBits &t, bool line_dirty)
{
    TraceTagBits tr(t, false);
    NPCacheResult r;
    if (t.first == TagFirst::Other && t.noShr) {
        r.fail = true;
        r.reason = "read of element written by another processor";
        return r;
    }
    if (t.first == TagFirst::None) {
        t.first = TagFirst::Own;
        r.sendFirstUpdate = !line_dirty;
    } else if (t.first == TagFirst::Other && !t.rOnly) {
        t.rOnly = true;
        r.sendROnlyUpdate = !line_dirty;
    }
    return r;
}

NPCacheResult
npCacheWriteDirty(NPTagBits &t)
{
    TraceTagBits tr(t, true);
    NPCacheResult r;
    if (t.first == TagFirst::Other || t.rOnly) {
        r.fail = true;
        r.reason = "write of element read or written by another "
                   "processor";
        return r;
    }
    // No need to tell the directory: the line is dirty here, so any
    // other access must come through this cache.
    t.first = TagFirst::Own;
    t.noShr = true;
    return r;
}

NPCacheResult
npCacheLocalApply(NPTagBits &t, bool is_write)
{
    TraceTagBits tr(t, is_write);
    NPCacheResult r;
    if (is_write) {
        if (t.first == TagFirst::Other || t.rOnly) {
            r.fail = true;
            r.reason = "write fill of element accessed by another "
                       "processor";
            return r;
        }
        t.first = TagFirst::Own;
        t.noShr = true;
        return r;
    }
    if (t.first == TagFirst::Other && t.noShr) {
        r.fail = true;
        r.reason = "read fill of element written by another processor";
        return r;
    }
    if (t.first == TagFirst::None)
        t.first = TagFirst::Own;
    else if (t.first == TagFirst::Other)
        t.rOnly = true;
    return r;
}

NPCacheResult
npCacheFirstUpdateFail(NPTagBits &t)
{
    TraceTagBits tr(t, false);
    NPCacheResult r;
    if (t.first == TagFirst::Own && t.noShr) {
        // This processor read and then wrote the element before
        // learning it was not the first to access it.
        r.fail = true;
        r.reason = "race between two First_updates: loser already "
                   "wrote";
    }
    t.first = TagFirst::Other;
    t.rOnly = true;
    return r;
}

NPDirResult
npDirRead(NPDirBits &d, NodeId requester)
{
    TraceDirBits tr(d, false);
    NPDirResult r;
    if (d.first != requester && d.first != invalidNode && d.noShr) {
        r.fail = true;
        r.reason = "read request for element written by another "
                   "processor";
        return r;
    }
    if (d.first == invalidNode)
        d.first = requester;
    else if (d.first != requester && !d.rOnly)
        d.rOnly = true;
    return r;
}

NPDirResult
npDirWrite(NPDirBits &d, NodeId requester)
{
    TraceDirBits tr(d, true);
    NPDirResult r;
    if ((d.first != requester && d.first != invalidNode) || d.rOnly) {
        r.fail = true;
        r.reason = "write request for element accessed by another "
                   "processor";
        return r;
    }
    d.first = requester;
    d.noShr = true;
    return r;
}

NPDirResult
npDirFirstUpdate(NPDirBits &d, NodeId sender)
{
    TraceDirBits tr(d, false);
    NPDirResult r;
    if (d.noShr) {
        if (d.first == sender)
            return r; // our own earlier write set it; benign
        r.fail = true;
        r.reason = "race between a First_update and a write";
        return r;
    }
    if (d.first == invalidNode) {
        d.first = sender;
    } else if (d.first != sender) {
        // Race between two First_updates: the element has now been
        // read by two processors.
        d.rOnly = true;
        r.sendFirstUpdateFail = true;
    }
    // d.first == sender: duplicate update; ignore.
    return r;
}

NPDirResult
npDirROnlyUpdate(NPDirBits &d, NodeId sender)
{
    TraceDirBits tr(d, false);
    NPDirResult r;
    if (d.noShr) {
        if (d.first == sender)
            return r;
        r.fail = true;
        r.reason = "race between a ROnly_update and a write";
        return r;
    }
    d.rOnly = true;
    // A second ROnly_update reaching the directory is plainly
    // ignored; the sender's tag.ROnly already has the right value.
    (void)sender;
    return r;
}

uint32_t
npCombineWire(uint32_t owner_wire, uint32_t home_wire)
{
    NPWire o = npUnpack(owner_wire);
    NPWire h = npUnpack(home_wire);
    uint32_t first;
    if (o.firstCode == 0) {
        first = h.firstCode;
    } else if (o.firstCode == npWireFirstOther) {
        // The owner learned OTHER from this home, which therefore
        // knows the identity.
        first = h.firstCode != 0 ? h.firstCode : npWireFirstOther;
    } else {
        first = o.firstCode; // the owner's own (real) id
    }
    return first | ((o.noShr || h.noShr) ? 1u << 7 : 0u) |
           ((o.rOnly || h.rOnly) ? 1u << 8 : 0u);
}

NPDirResult
npDirMergeDirty(NPDirBits &d, NodeId sender, uint32_t wire)
{
    (void)sender; // identity travels inside the wire encoding
    TraceDirBits tr(d, true);
    NPDirResult r;
    NPWire w = npUnpack(wire);

    if (w.firstCode != 0) {
        NodeId id = w.firstCode == npWireFirstOther
                        ? d.first
                        : static_cast<NodeId>(w.firstCode - 1);
        if (w.firstCode == npWireFirstOther) {
            // The owner learned "someone else was first" from this
            // home, so the directory must already know who.
            SPECRT_ASSERT(d.first != invalidNode,
                          "OTHER merged into empty dir.First");
        } else if (d.first == invalidNode) {
            d.first = id;
        } else if (d.first != id) {
            r.fail = true;
            r.reason = "contradictory First merge: two first accessors";
            return r;
        }
    }
    d.noShr = d.noShr || w.noShr;
    d.rOnly = d.rOnly || w.rOnly;
    if (d.noShr && d.rOnly) {
        r.fail = true;
        r.reason = "merged state: element both written and read-shared";
    }
    return r;
}

} // namespace specrt
