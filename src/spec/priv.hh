/**
 * @file
 * Pure transition logic of the privatization algorithm with read-in
 * and copy-out support (paper Figures 8 and 9).
 *
 * Terminology: an iteration is "read-first" for an element when it
 * reads the element before writing it in that same iteration. The
 * shared array's home keeps MaxR1st / MinW time stamps per element;
 * the test fails whenever a read-first iteration is higher than some
 * writing iteration.
 */

#ifndef SPECRT_SPEC_PRIV_HH
#define SPECRT_SPEC_PRIV_HH

#include "spec/access_bits.hh"

namespace specrt
{

/** Outcome of a privatization cache-side step. */
struct PrivCacheResult
{
    /** The access is a read-first for the element this iteration;
     *  a read-first signal goes to the private directory. */
    bool readFirst = false;
    /** First write to the element in this iteration; a first-write
     *  signal goes to the private directory. */
    bool firstWrite = false;
};

/** Outcome of a private-directory step. */
struct PrivPDirResult
{
    /** The whole line is untouched: read the line in from the
     *  shared array before replying (Figs. 8(c) / 9(h)). */
    bool needReadIn = false;
    /** Forward a read-first signal to the shared directory. */
    bool readFirst = false;
    /** Forward a first-write signal to the shared directory. */
    bool firstWrite = false;
};

/** Outcome of a shared-directory step. */
struct PrivSDirResult
{
    bool fail = false;
    const char *reason = nullptr;
};

/** Effective tag bits for @p iter (per-iteration clearing). */
inline PrivTagBits
privEffective(const PrivTagBits &t, IterNum iter)
{
    return t.iter == iter ? t : PrivTagBits{false, false, iter};
}

/** Processor read hitting in the cache (Fig. 8(a)). */
PrivCacheResult privCacheRead(PrivTagBits &t, IterNum iter);

/** Processor write hitting in the cache (Fig. 9(f)). */
PrivCacheResult privCacheWrite(PrivTagBits &t, IterNum iter);

/**
 * Private directory receives a read-first signal from its processor
 * (Fig. 8(b)). Always forwards to the shared directory.
 */
void privPDirReadFirstSig(PrivPrivDirBits &d, IterNum iter);

/**
 * Private directory processes a read request (Fig. 8(c)).
 * @param line_untouched all elements of the line have zero state
 */
PrivPDirResult privPDirRead(PrivPrivDirBits &d, IterNum iter,
                            bool line_untouched);

/**
 * Private directory receives a first-write signal (Fig. 9(g)).
 * Result.firstWrite set when this is the first write of the whole
 * loop by this processor (forward to shared directory).
 */
PrivPDirResult privPDirFirstWriteSig(PrivPrivDirBits &d, IterNum iter);

/** Private directory processes a write request (Fig. 9(h)). */
PrivPDirResult privPDirWrite(PrivPrivDirBits &d, IterNum iter,
                             bool line_untouched);

/** Complete a read-in at the private directory (data arrived). */
void privPDirReadInDone(PrivPrivDirBits &d, IterNum iter,
                        bool for_write);

/**
 * Shared directory receives a read-first signal or a read-in request
 * (Figs. 8(d) / 8(e)).
 */
PrivSDirResult privSDirReadFirst(PrivSharedDirBits &d, IterNum iter);

/**
 * Shared directory receives a first-write signal or a read-in-for-
 * write request (Figs. 9(i) / 9(j)).
 */
PrivSDirResult privSDirFirstWrite(PrivSharedDirBits &d, IterNum iter);

/**
 * Shared directory receives a copy-out of the value written in
 * @p iter. @return true when the value must be applied (it is the
 * latest writing iteration seen so far).
 */
bool privSDirCopyOut(PrivSharedDirBits &d, IterNum iter);

} // namespace specrt

#endif // SPECRT_SPEC_PRIV_HH
