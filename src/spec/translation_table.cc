#include "spec/translation_table.hh"

#include "sim/logging.hh"

namespace specrt
{

void
TranslationTable::assignSlots(TestRange &r)
{
    uint32_t elems =
        static_cast<uint32_t>((r.end - r.base) / r.elemBytes);
    uint32_t padded =
        (elems + slotAlign - 1) / slotAlign * slotAlign;
    r.elemOffset = totalSlots;
    totalSlots += padded;
}

void
TranslationTable::addNonPriv(const Region &region)
{
    TestRange r;
    r.base = region.base;
    r.end = region.base + region.bytes;
    r.elemBytes = region.elemBytes;
    r.type = TestType::NonPriv;
    assignSlots(r);
    ranges.push_back(r);
}

void
TranslationTable::addPriv(const Region &shared,
                          const std::vector<const Region *> &copies)
{
    TestRange s;
    s.base = shared.base;
    s.end = shared.base + shared.bytes;
    s.elemBytes = shared.elemBytes;
    s.type = TestType::Priv;
    s.role = PrivRole::SharedArray;
    assignSlots(s);
    ranges.push_back(s);

    for (size_t p = 0; p < copies.size(); ++p) {
        const Region *c = copies[p];
        SPECRT_ASSERT(c && c->bytes == shared.bytes &&
                      c->elemBytes == shared.elemBytes,
                      "private copy %zu does not mirror shared array "
                      "'%s'", p, shared.name.c_str());
        TestRange r;
        r.base = c->base;
        r.end = c->base + c->bytes;
        r.elemBytes = c->elemBytes;
        r.type = TestType::Priv;
        r.role = PrivRole::PrivateCopy;
        r.sharedBase = shared.base;
        r.owner = static_cast<NodeId>(p);
        assignSlots(r);
        ranges.push_back(r);
    }
}

const TestRange *
TranslationTable::lookup(Addr addr) const
{
    for (const TestRange &r : ranges) {
        if (r.contains(addr))
            return &r;
    }
    return nullptr;
}

} // namespace specrt
