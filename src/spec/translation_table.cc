#include "spec/translation_table.hh"

#include "sim/logging.hh"

namespace specrt
{

void
TranslationTable::addNonPriv(const Region &region)
{
    TestRange r;
    r.base = region.base;
    r.end = region.base + region.bytes;
    r.elemBytes = region.elemBytes;
    r.type = TestType::NonPriv;
    ranges.push_back(r);
}

void
TranslationTable::addPriv(const Region &shared,
                          const std::vector<const Region *> &copies)
{
    TestRange s;
    s.base = shared.base;
    s.end = shared.base + shared.bytes;
    s.elemBytes = shared.elemBytes;
    s.type = TestType::Priv;
    s.role = PrivRole::SharedArray;
    ranges.push_back(s);

    for (size_t p = 0; p < copies.size(); ++p) {
        const Region *c = copies[p];
        SPECRT_ASSERT(c && c->bytes == shared.bytes &&
                      c->elemBytes == shared.elemBytes,
                      "private copy %zu does not mirror shared array "
                      "'%s'", p, shared.name.c_str());
        TestRange r;
        r.base = c->base;
        r.end = c->base + c->bytes;
        r.elemBytes = c->elemBytes;
        r.type = TestType::Priv;
        r.role = PrivRole::PrivateCopy;
        r.sharedBase = shared.base;
        r.owner = static_cast<NodeId>(p);
        ranges.push_back(r);
    }
}

const TestRange *
TranslationTable::lookup(Addr addr) const
{
    for (const TestRange &r : ranges) {
        if (r.contains(addr))
            return &r;
    }
    return nullptr;
}

} // namespace specrt
