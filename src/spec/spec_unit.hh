/**
 * @file
 * The speculative-parallelization hardware, attached to a DsmSystem.
 *
 * SpecSystem owns one SpecCacheUnit per cache controller (the Access
 * Bit Array + Test Logic of Fig. 10(a,b)) and one SpecDirUnit per
 * directory controller (the Translation Table + Access Bit Table +
 * Test Logic of Fig. 10(c)). Arm it before a speculative loop,
 * disarm after; a detected cross-iteration dependence calls the
 * abort hook and latches the failure.
 */

#ifndef SPECRT_SPEC_SPEC_UNIT_HH
#define SPECRT_SPEC_SPEC_UNIT_HH

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/dsm.hh"
#include "mem/spec_iface.hh"
#include "sim/trace.hh"
#include "spec/access_bits.hh"
#include "spec/nonpriv.hh"
#include "spec/priv.hh"
#include "spec/translation_table.hh"

namespace specrt
{

class SpecSystem;

/** Cache-side speculation unit of one node. */
class SpecCacheUnit : public SpecCacheIface
{
  public:
    SpecCacheUnit(SpecSystem &sys, NodeId node);

    void onLoadHit(Addr addr, LineState state, IterNum iter) override;
    void onStoreDirtyHit(Addr addr, IterNum iter) override;
    void onFill(Addr line_addr, const std::vector<uint32_t> &bits,
                Addr elem_addr, bool is_write, IterNum iter) override;
    std::vector<uint32_t> onDirtyOut(Addr line_addr) override;
    std::vector<uint32_t>
    combineBits(Addr line_addr, const std::vector<uint32_t> &owner_bits,
                const std::vector<uint32_t> &home_bits) override;
    void onInval(Addr line_addr) override;
    void onMsg(const Msg &msg) override;

    /** Drop every tag access bit (loop boundary reset line). */
    void clearAll();

    /** Tag-side access bits (invariant checker inspection). */
    const std::unordered_map<Addr, std::vector<NPTagBits>> &
    npTagLines() const
    {
        return npLines;
    }
    const std::unordered_map<Addr, std::vector<PrivTagBits>> &
    privTagLines() const
    {
        return privLines;
    }

  private:
    std::vector<NPTagBits> &npLine(Addr line, uint32_t elems);
    std::vector<PrivTagBits> &privLine(Addr line, uint32_t elems);

    SpecSystem &sys;
    NodeId node;

    std::unordered_map<Addr, std::vector<NPTagBits>> npLines;
    std::unordered_map<Addr, std::vector<PrivTagBits>> privLines;
};

/** Directory-side speculation unit of one home node. */
class SpecDirUnit : public SpecDirIface
{
  public:
    SpecDirUnit(SpecSystem &sys, NodeId node);

    SpecDirAction onReadReq(const Msg &req) override;
    SpecDirAction onWriteReq(const Msg &req) override;
    std::vector<uint32_t> collectFillBits(NodeId requester,
                                          Addr line_addr,
                                          IterNum iter) override;
    void onDirtyBits(NodeId from, Addr line_addr,
                     const std::vector<uint32_t> &bits) override;
    void onMsg(const Msg &msg) override;

    /** Drop all access-bit-table state (loop boundary). */
    void clearAll();

    /**
     * Elements of a private-copy range this node is home of that
     * were written during the loop, with their last writing
     * iteration (used by the runtime to drive copy-out).
     */
    std::vector<std::pair<Addr, IterNum>>
    writtenPrivElems(Addr base, Addr end) const;

    /** Directory-side access bits (invariant checker inspection). */
    const std::unordered_map<Addr, NPDirBits> &npBits() const
    {
        return np;
    }
    const std::unordered_map<Addr, PrivSharedDirBits> &
    sharedBits() const
    {
        return ps;
    }
    const std::unordered_map<Addr, PrivPrivDirBits> &privBits() const
    {
        return pp;
    }
    /** Read-ins still waiting for their ReadInReply (quiesce). */
    size_t numPendingReadIns() const { return pendingReadIns.size(); }

    /**
     * Drop in-flight read-in bookkeeping. Called at disarm: after an
     * abort the replies were discarded with the event queue, so the
     * entries can never complete and must not survive into the next
     * phase (the quiesce pass would flag them as orphans).
     */
    void clearPendingReadIns() { pendingReadIns.clear(); }

  private:
    struct PendingReadIn
    {
        Addr privLine;
        Addr privElem;
    };

    /** True if every element of the private line is untouched. */
    bool lineUntouched(Addr line, const TestRange &range) const;

    void sendReadFirstToShared(const TestRange &range, Addr priv_elem,
                               IterNum iter);
    void sendFirstWriteToShared(const TestRange &range, Addr priv_elem,
                                IterNum iter);
    void startReadIn(const Msg &req, const TestRange &range,
                     bool for_write);

    SpecSystem &sys;
    NodeId node;

    std::unordered_map<Addr, NPDirBits> np;
    std::unordered_map<Addr, PrivSharedDirBits> ps;
    std::unordered_map<Addr, PrivPrivDirBits> pp;
    /** Keyed by the SHARED line address of the in-flight read-in. */
    std::unordered_map<Addr, PendingReadIn> pendingReadIns;
};

/** Description of a latched speculation failure. */
struct SpecFailure
{
    bool failed = false;
    NodeId node = invalidNode;
    Addr elemAddr = invalidAddr;
    Tick tick = 0;
    /** Iteration of the failing access (0 when unknown). */
    IterNum iter = 0;
    std::string reason;
    /**
     * Reconstructed abort cause: the conflicting access pair and the
     * violated §3.2/§3.3 rule. Only populated (cause.valid) when
     * protocol tracing was enabled at failure time.
     */
    trace::AbortCause cause;
};

/** The whole speculation hardware of one machine. */
class SpecSystem : public StatGroup
{
  public:
    explicit SpecSystem(DsmSystem &dsm);
    ~SpecSystem();

    SpecSystem(const SpecSystem &) = delete;
    SpecSystem &operator=(const SpecSystem &) = delete;

    DsmSystem &machine() { return dsm; }
    TranslationTable &table() { return _table; }

    /** Clear all access bits and start checking accesses. */
    void arm();
    /** Stop checking (loop done); keeps state for inspection. */
    void disarm();
    bool armed() const { return _armed; }

    /** Latch a failure and fire the abort hook (idempotent). */
    void fail(NodeId node, Addr elem, const char *reason);
    const SpecFailure &failure() const { return _failure; }
    /** Clear the failure latch (new loop attempt). */
    void clearFailure() { _failure = SpecFailure{}; }

    /** Hook fired once on the first failure. */
    void setAbortHook(std::function<void()> hook)
    {
        abortHook = std::move(hook);
    }

    /** Written elements of processor @p p's private range. */
    std::vector<std::pair<Addr, IterNum>>
    writtenPrivElems(NodeId p, Addr base, Addr end) const;

    SpecCacheUnit &cacheUnit(NodeId n) { return *cacheUnits.at(n); }
    SpecDirUnit &dirUnit(NodeId n) { return *dirUnits.at(n); }
    const SpecCacheUnit &cacheUnit(NodeId n) const
    {
        return *cacheUnits.at(n);
    }
    const SpecDirUnit &dirUnit(NodeId n) const { return *dirUnits.at(n); }

    // Shared plumbing for the units.
    Network &net() { return dsm.network(); }
    AddrMap &mem() { return dsm.memory(); }
    const MachineConfig &cfg() const { return dsm.config(); }
    DirCtrl &dirCtrl(NodeId n) { return dsm.dirCtrl(n); }
    Tick now() const { return dsm.eventQueue().curTick(); }
    uint32_t lineBytes() const { return dsm.config().l2.lineBytes; }
    Addr lineOf(Addr a) const
    {
        return a & ~Addr(lineBytes() - 1);
    }

    Scalar firstUpdates;
    Scalar rOnlyUpdates;
    Scalar readFirstSigs;
    Scalar firstWriteSigs;
    Scalar readIns;
    Scalar copyOuts;
    Scalar failures;

  private:
    DsmSystem &dsm;
    TranslationTable _table;
    bool _armed = false;
    SpecFailure _failure;
    std::function<void()> abortHook;

    std::vector<std::unique_ptr<SpecCacheUnit>> cacheUnits;
    std::vector<std::unique_ptr<SpecDirUnit>> dirUnits;
};

} // namespace specrt

#endif // SPECRT_SPEC_SPEC_UNIT_HH
