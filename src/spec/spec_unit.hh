/**
 * @file
 * The speculative-parallelization hardware, attached to a DsmSystem.
 *
 * SpecSystem owns one SpecCacheUnit per cache controller (the Access
 * Bit Array + Test Logic of Fig. 10(a,b)) and one SpecDirUnit per
 * directory controller (the Translation Table + Access Bit Table +
 * Test Logic of Fig. 10(c)). Arm it before a speculative loop,
 * disarm after; a detected cross-iteration dependence calls the
 * abort hook and latches the failure.
 *
 * Access-bit storage is dense, mirroring the flat SRAM tables of
 * Fig. 10: the translation table assigns every element under test a
 * dense slot id (TestRange::elemIndex), and each unit keeps parallel
 * arrays indexed by it -- an access is an array index plus a bounds
 * check, never a hash probe. A "present" byte per slot (per line on
 * the cache side) preserves the touched/untouched distinction the
 * old hash tables encoded by key existence.
 */

#ifndef SPECRT_SPEC_SPEC_UNIT_HH
#define SPECRT_SPEC_SPEC_UNIT_HH

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mem/dsm.hh"
#include "mem/spec_iface.hh"
#include "sim/trace.hh"
#include "spec/access_bits.hh"
#include "spec/nonpriv.hh"
#include "spec/priv.hh"
#include "spec/translation_table.hh"

namespace specrt
{

class SpecSystem;

/**
 * Dense access-bit table indexed by translation-table element id.
 * Grows lazily; clear() keeps capacity (arm() runs between loop
 * attempts on the same footprint).
 */
template <typename B>
class DenseBitTable
{
  public:
    /** Slot @p idx, materializing it (marked present) on demand. */
    B &
    at(uint32_t idx)
    {
        if (idx >= slots.size())
            grow(idx);
        present[idx] = 1;
        return slots[idx];
    }

    /** Slot @p idx if it was ever touched, else nullptr. */
    const B *
    find(uint32_t idx) const
    {
        return idx < slots.size() && present[idx] ? &slots[idx]
                                                  : nullptr;
    }

    void
    clear()
    {
        std::fill(slots.begin(), slots.end(), B{});
        std::fill(present.begin(), present.end(), 0);
    }

  private:
    void
    grow(uint32_t idx)
    {
        size_t cap = slots.empty() ? 256 : slots.size();
        while (cap <= idx)
            cap *= 2;
        slots.resize(cap);
        present.resize(cap, 0);
    }

    std::vector<B> slots;
    std::vector<uint8_t> present;
};

/** Cache-side speculation unit of one node. */
class SpecCacheUnit : public SpecCacheIface
{
  public:
    SpecCacheUnit(SpecSystem &sys, NodeId node);

    void onLoadHit(Addr addr, LineState state, IterNum iter) override;
    void onStoreDirtyHit(Addr addr, IterNum iter) override;
    void onFill(Addr line_addr, const MsgBits &bits, Addr elem_addr,
                bool is_write, IterNum iter) override;
    MsgBits onDirtyOut(Addr line_addr) override;
    MsgBits combineBits(Addr line_addr, const MsgBits &owner_bits,
                        const MsgBits &home_bits) override;
    void onInval(Addr line_addr) override;
    void onMsg(const Msg &msg) override;

    /** Drop every tag access bit (loop boundary reset line). */
    void clearAll();

    /**
     * Visit each resident line's non-priv tag slice (invariant
     * checker inspection): f(Addr line, const NPTagBits *tags,
     * uint32_t elems).
     */
    template <typename F>
    void forEachNpLine(F &&f) const;

  private:
    /** Tag slice of a resident line, materializing it on demand.
     *  Header-inline fast path (runs once per tagged access); the
     *  array growth is the out-of-line slow path. */
    NPTagBits *
    npSlice(uint32_t first, uint32_t elems)
    {
        if (size_t(first) + elems > npTags.size())
            growNp(first, elems);
        npLineFlag[first] = 1;
        return &npTags[first];
    }
    PrivTagBits *
    privSlice(uint32_t first, uint32_t elems)
    {
        if (size_t(first) + elems > privTags.size())
            growPriv(first, elems);
        privLineFlag[first] = 1;
        return &privTags[first];
    }

    void growNp(uint32_t first, uint32_t elems);
    void growPriv(uint32_t first, uint32_t elems);

    /** Zero one line's tags and drop its resident flag. */
    void dropLine(uint32_t first, uint32_t elems);

    SpecSystem &sys;
    NodeId node;

    /** Per-element tag bits, indexed by dense element id. */
    std::vector<NPTagBits> npTags;
    std::vector<PrivTagBits> privTags;
    /** Line-resident flags, stored at each line's first slot id. */
    std::vector<uint8_t> npLineFlag;
    std::vector<uint8_t> privLineFlag;
};

/** Directory-side speculation unit of one home node. */
class SpecDirUnit : public SpecDirIface
{
  public:
    SpecDirUnit(SpecSystem &sys, NodeId node);

    SpecDirAction onReadReq(const Msg &req) override;
    SpecDirAction onWriteReq(const Msg &req) override;
    MsgBits collectFillBits(NodeId requester, Addr line_addr,
                            IterNum iter) override;
    void onDirtyBits(NodeId from, Addr line_addr,
                     const MsgBits &bits) override;
    void onMsg(const Msg &msg) override;

    /** Drop all access-bit-table state (loop boundary). */
    void clearAll();

    /**
     * Elements of a private-copy range this node is home of that
     * were written during the loop, with their last writing
     * iteration (used by the runtime to drive copy-out).
     */
    std::vector<std::pair<Addr, IterNum>>
    writtenPrivElems(Addr base, Addr end) const;

    // --- invariant checker inspection ---------------------------------

    /** Non-priv home bits of one element, or nullptr (untouched). */
    const NPDirBits *findNp(Addr elem) const;

    /** f(Addr elem, const NPDirBits &) over touched elements. */
    template <typename F>
    void forEachNp(F &&f) const;
    /** f(Addr elem, const PrivSharedDirBits &) likewise. */
    template <typename F>
    void forEachShared(F &&f) const;
    /** f(Addr elem, const PrivPrivDirBits &) likewise. */
    template <typename F>
    void forEachPriv(F &&f) const;

    /**
     * Mutable home bits of one element, materializing the entry if
     * absent. Verification seeding access only: the model checker's
     * seeded-bug scenarios use these to plant a corrupted directory
     * state that the invariant sweep must then attribute. Protocol
     * code never calls them.
     */
    NPDirBits &npBitsForTest(Addr elem);
    PrivSharedDirBits &sharedBitsForTest(Addr elem);

    /** Read-ins still waiting for their ReadInReply (quiesce). */
    size_t numPendingReadIns() const { return pendingReadIns.size(); }

    /**
     * Drop in-flight read-in bookkeeping. Called at disarm: after an
     * abort the replies were discarded with the event queue, so the
     * entries can never complete and must not survive into the next
     * phase (the quiesce pass would flag them as orphans).
     */
    void clearPendingReadIns() { pendingReadIns.clear(); }

  private:
    struct PendingReadIn
    {
        Addr sharedLine = invalidAddr;
        Addr privLine = invalidAddr;
        Addr privElem = invalidAddr;
    };

    /** True if every element of the private line is untouched. */
    bool lineUntouched(Addr line, const TestRange &range) const;

    void sendReadFirstToShared(const TestRange &range, Addr priv_elem,
                               IterNum iter);
    void sendFirstWriteToShared(const TestRange &range, Addr priv_elem,
                                IterNum iter);
    void startReadIn(const Msg &req, const TestRange &range,
                     bool for_write);

    SpecSystem &sys;
    NodeId node;

    DenseBitTable<NPDirBits> np;
    DenseBitTable<PrivSharedDirBits> ps;
    DenseBitTable<PrivPrivDirBits> pp;
    /** In-flight read-ins, keyed by the SHARED line address. */
    std::vector<PendingReadIn> pendingReadIns;
};

/** Description of a latched speculation failure. */
struct SpecFailure
{
    bool failed = false;
    NodeId node = invalidNode;
    Addr elemAddr = invalidAddr;
    Tick tick = 0;
    /** Iteration of the failing access (0 when unknown). */
    IterNum iter = 0;
    std::string reason;
    /**
     * Reconstructed abort cause: the conflicting access pair and the
     * violated §3.2/§3.3 rule. Only populated (cause.valid) when
     * protocol tracing was enabled at failure time.
     */
    trace::AbortCause cause;
};

/** The whole speculation hardware of one machine. */
class SpecSystem : public StatGroup
{
  public:
    explicit SpecSystem(DsmSystem &dsm);
    ~SpecSystem();

    SpecSystem(const SpecSystem &) = delete;
    SpecSystem &operator=(const SpecSystem &) = delete;

    DsmSystem &machine() { return dsm; }
    TranslationTable &table() { return _table; }
    const TranslationTable &table() const { return _table; }

    /** Clear all access bits and start checking accesses. */
    void arm();
    /** Stop checking (loop done); keeps state for inspection. */
    void disarm();
    bool armed() const { return _armed; }

    /** Latch a failure and fire the abort hook (idempotent). */
    void fail(NodeId node, Addr elem, const char *reason);
    const SpecFailure &failure() const { return _failure; }
    /** Clear the failure latch (new loop attempt). */
    void clearFailure() { _failure = SpecFailure{}; }

    /** Hook fired once on the first failure. */
    void setAbortHook(std::function<void()> hook)
    {
        abortHook = std::move(hook);
    }

    /** Written elements of processor @p p's private range. */
    std::vector<std::pair<Addr, IterNum>>
    writtenPrivElems(NodeId p, Addr base, Addr end) const;

    SpecCacheUnit &cacheUnit(NodeId n) { return *cacheUnits.at(n); }
    SpecDirUnit &dirUnit(NodeId n) { return *dirUnits.at(n); }
    const SpecCacheUnit &cacheUnit(NodeId n) const
    {
        return *cacheUnits.at(n);
    }
    const SpecDirUnit &dirUnit(NodeId n) const { return *dirUnits.at(n); }

    // Shared plumbing for the units.
    Network &net() { return dsm.network(); }
    AddrMap &mem() { return dsm.memory(); }
    const MachineConfig &cfg() const { return dsm.config(); }
    DirCtrl &dirCtrl(NodeId n) { return dsm.dirCtrl(n); }
    Tick now() const { return dsm.eventQueue().curTick(); }
    uint32_t lineBytes() const { return dsm.config().l2.lineBytes; }
    Addr lineOf(Addr a) const
    {
        return a & ~Addr(lineBytes() - 1);
    }

    Scalar firstUpdates;
    Scalar rOnlyUpdates;
    Scalar readFirstSigs;
    Scalar firstWriteSigs;
    Scalar readIns;
    Scalar copyOuts;
    Scalar failures;

  private:
    DsmSystem &dsm;
    TranslationTable _table;
    bool _armed = false;
    SpecFailure _failure;
    std::function<void()> abortHook;

    std::vector<std::unique_ptr<SpecCacheUnit>> cacheUnits;
    std::vector<std::unique_ptr<SpecDirUnit>> dirUnits;
};

// --------------------------------------------------------------------
// Inspection templates (need the full SpecSystem definition)
// --------------------------------------------------------------------

template <typename F>
void
SpecCacheUnit::forEachNpLine(F &&f) const
{
    const uint32_t lineBytes = sys.lineBytes();
    for (const TestRange &r : sys.table().allRanges()) {
        if (r.type != TestType::NonPriv)
            continue;
        uint32_t elems = lineBytes / r.elemBytes;
        for (Addr line = r.base; line < r.end; line += lineBytes) {
            uint32_t first = r.elemIndex(line);
            if (first < npLineFlag.size() && npLineFlag[first])
                f(line, &npTags[first], elems);
        }
    }
}

template <typename F>
void
SpecDirUnit::forEachNp(F &&f) const
{
    for (const TestRange &r : sys.table().allRanges()) {
        for (Addr a = r.base; a < r.end; a += r.elemBytes) {
            if (const NPDirBits *b = np.find(r.elemIndex(a)))
                f(a, *b);
        }
    }
}

template <typename F>
void
SpecDirUnit::forEachShared(F &&f) const
{
    for (const TestRange &r : sys.table().allRanges()) {
        for (Addr a = r.base; a < r.end; a += r.elemBytes) {
            if (const PrivSharedDirBits *b = ps.find(r.elemIndex(a)))
                f(a, *b);
        }
    }
}

template <typename F>
void
SpecDirUnit::forEachPriv(F &&f) const
{
    for (const TestRange &r : sys.table().allRanges()) {
        for (Addr a = r.base; a < r.end; a += r.elemBytes) {
            if (const PrivPrivDirBits *b = pp.find(r.elemIndex(a)))
                f(a, *b);
        }
    }
}

} // namespace specrt

#endif // SPECRT_SPEC_SPEC_UNIT_HH
