#include "spec/priv.hh"

#include "sim/logging.hh"
#include "sim/timeline.hh"
#include "sim/trace.hh"

namespace specrt
{

namespace
{

/** Record a time-stamp move (no-op when tracing is off). */
inline void
traceTs(trace::TsStamp which, IterNum old_v, IterNum new_v)
{
    if (old_v != new_v)
        timeline::specTransition();
    if (trace::enabled())
        trace::timeStamp(which, old_v, new_v);
}

} // namespace

PrivCacheResult
privCacheRead(PrivTagBits &t, IterNum iter)
{
    PrivCacheResult r;
    PrivTagBits eff = privEffective(t, iter);
    if (!eff.read1st && !eff.write) {
        eff.read1st = true;
        r.readFirst = true;
    }
    t = eff;
    return r;
}

PrivCacheResult
privCacheWrite(PrivTagBits &t, IterNum iter)
{
    PrivCacheResult r;
    PrivTagBits eff = privEffective(t, iter);
    if (!eff.write) {
        eff.write = true;
        r.firstWrite = true;
    }
    t = eff;
    return r;
}

void
privPDirReadFirstSig(PrivPrivDirBits &d, IterNum iter)
{
    traceTs(trace::TsStamp::PMaxR1st, d.pMaxR1st, iter);
    d.pMaxR1st = iter;
}

PrivPDirResult
privPDirRead(PrivPrivDirBits &d, IterNum iter, bool line_untouched)
{
    PrivPDirResult r;
    if (line_untouched) {
        SPECRT_ASSERT(d.untouched(), "untouched line, touched element");
        r.needReadIn = true;
        return r;
    }
    if (d.pMaxR1st < iter && d.pMaxW < iter) {
        r.readFirst = true;
        traceTs(trace::TsStamp::PMaxR1st, d.pMaxR1st, iter);
        d.pMaxR1st = iter;
    }
    return r;
}

PrivPDirResult
privPDirFirstWriteSig(PrivPrivDirBits &d, IterNum iter)
{
    PrivPDirResult r;
    if (d.pMaxW == 0) {
        // First write to the element in the whole loop.
        traceTs(trace::TsStamp::PMaxW, d.pMaxW, iter);
        d.pMaxW = iter;
        r.firstWrite = true;
    } else if (d.pMaxW < iter) {
        traceTs(trace::TsStamp::PMaxW, d.pMaxW, iter);
        d.pMaxW = iter;
    }
    return r;
}

PrivPDirResult
privPDirWrite(PrivPrivDirBits &d, IterNum iter, bool line_untouched)
{
    PrivPDirResult r;
    if (d.pMaxW == 0) {
        if (line_untouched) {
            r.needReadIn = true;
            return r;
        }
        r.firstWrite = true;
        traceTs(trace::TsStamp::PMaxW, d.pMaxW, iter);
        d.pMaxW = iter;
        return r;
    }
    if (d.pMaxW < iter) {
        traceTs(trace::TsStamp::PMaxW, d.pMaxW, iter);
        d.pMaxW = iter;
    }
    return r;
}

void
privPDirReadInDone(PrivPrivDirBits &d, IterNum iter, bool for_write)
{
    if (for_write) {
        traceTs(trace::TsStamp::PMaxW, d.pMaxW, iter);
        d.pMaxW = iter;
    } else {
        traceTs(trace::TsStamp::PMaxR1st, d.pMaxR1st, iter);
        d.pMaxR1st = iter;
    }
}

PrivSDirResult
privSDirReadFirst(PrivSharedDirBits &d, IterNum iter)
{
    PrivSDirResult r;
    if (iter > d.minW) {
        r.fail = true;
        r.reason = "read-first iteration after a writing iteration "
                   "(flow dependence)";
        return r;
    }
    if (iter > d.maxR1st) {
        traceTs(trace::TsStamp::MaxR1st, d.maxR1st, iter);
        d.maxR1st = iter;
    }
    return r;
}

PrivSDirResult
privSDirFirstWrite(PrivSharedDirBits &d, IterNum iter)
{
    PrivSDirResult r;
    if (iter < d.maxR1st) {
        r.fail = true;
        r.reason = "writing iteration before a read-first iteration "
                   "(flow dependence)";
        return r;
    }
    if (iter < d.minW) {
        traceTs(trace::TsStamp::MinW, d.minW, iter);
        d.minW = iter;
    }
    return r;
}

bool
privSDirCopyOut(PrivSharedDirBits &d, IterNum iter)
{
    if (iter >= d.lastCopyIter) {
        d.lastCopyIter = iter;
        return true;
    }
    return false;
}

} // namespace specrt
