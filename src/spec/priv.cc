#include "spec/priv.hh"

#include "sim/logging.hh"

namespace specrt
{

PrivCacheResult
privCacheRead(PrivTagBits &t, IterNum iter)
{
    PrivCacheResult r;
    PrivTagBits eff = privEffective(t, iter);
    if (!eff.read1st && !eff.write) {
        eff.read1st = true;
        r.readFirst = true;
    }
    t = eff;
    return r;
}

PrivCacheResult
privCacheWrite(PrivTagBits &t, IterNum iter)
{
    PrivCacheResult r;
    PrivTagBits eff = privEffective(t, iter);
    if (!eff.write) {
        eff.write = true;
        r.firstWrite = true;
    }
    t = eff;
    return r;
}

void
privPDirReadFirstSig(PrivPrivDirBits &d, IterNum iter)
{
    d.pMaxR1st = iter;
}

PrivPDirResult
privPDirRead(PrivPrivDirBits &d, IterNum iter, bool line_untouched)
{
    PrivPDirResult r;
    if (line_untouched) {
        SPECRT_ASSERT(d.untouched(), "untouched line, touched element");
        r.needReadIn = true;
        return r;
    }
    if (d.pMaxR1st < iter && d.pMaxW < iter) {
        r.readFirst = true;
        d.pMaxR1st = iter;
    }
    return r;
}

PrivPDirResult
privPDirFirstWriteSig(PrivPrivDirBits &d, IterNum iter)
{
    PrivPDirResult r;
    if (d.pMaxW == 0) {
        // First write to the element in the whole loop.
        d.pMaxW = iter;
        r.firstWrite = true;
    } else if (d.pMaxW < iter) {
        d.pMaxW = iter;
    }
    return r;
}

PrivPDirResult
privPDirWrite(PrivPrivDirBits &d, IterNum iter, bool line_untouched)
{
    PrivPDirResult r;
    if (d.pMaxW == 0) {
        if (line_untouched) {
            r.needReadIn = true;
            return r;
        }
        r.firstWrite = true;
        d.pMaxW = iter;
        return r;
    }
    if (d.pMaxW < iter)
        d.pMaxW = iter;
    return r;
}

void
privPDirReadInDone(PrivPrivDirBits &d, IterNum iter, bool for_write)
{
    if (for_write)
        d.pMaxW = iter;
    else
        d.pMaxR1st = iter;
}

PrivSDirResult
privSDirReadFirst(PrivSharedDirBits &d, IterNum iter)
{
    PrivSDirResult r;
    if (iter > d.minW) {
        r.fail = true;
        r.reason = "read-first iteration after a writing iteration "
                   "(flow dependence)";
        return r;
    }
    if (iter > d.maxR1st)
        d.maxR1st = iter;
    return r;
}

PrivSDirResult
privSDirFirstWrite(PrivSharedDirBits &d, IterNum iter)
{
    PrivSDirResult r;
    if (iter < d.maxR1st) {
        r.fail = true;
        r.reason = "writing iteration before a read-first iteration "
                   "(flow dependence)";
        return r;
    }
    if (iter < d.minW)
        d.minW = iter;
    return r;
}

bool
privSDirCopyOut(PrivSharedDirBits &d, IterNum iter)
{
    if (iter >= d.lastCopyIter) {
        d.lastCopyIter = iter;
        return true;
    }
    return false;
}

} // namespace specrt
